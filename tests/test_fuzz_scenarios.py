"""Composed-scenario fuzzer: random chaos schedules vs the invariants.

Hypothesis draws a *scenario descriptor* — a plain-JSON dict naming a
topology (catalog or generated family), a trace kind (including the
adversarial generators), a utilization, a disruption policy and a list
of event blocks with slot offsets. The harness builds one
:class:`~repro.scenarios.events.EventSchedule` per block, combines them
with ``shifted()`` + ``compose()`` — so the composition operator itself
is under fuzz, same-slot collisions included — runs the composed
schedule through **both** embedding engines, and checks every invariant
the dedicated suites pin individually:

* the differential oracle — fast-path and reference results must be
  bit-identical (decisions, preemptions, disruptions, per-slot arrays);
* ``allocated_demand`` matches an independent reconstruction from the
  decision log and never goes negative;
* the capacity invariant — residual + active loads == effective
  capacity on every element when the run ends
  (:func:`~repro.scenarios.events.capacity_invariant_gap`).

The same property runs at two budgets: a handful of examples in the
fast tier, and the >=200-example ``slow``-marked run that CI executes
in its ``-m slow`` job. The ``ci`` hypothesis profile (conftest.py) is
derandomized, so both runs replay the identical example sequence.

Descriptors are deliberately JSON-serializable: when the fuzzer finds a
bug, hypothesis's shrunk counterexample can be committed verbatim under
``tests/corpus/`` where ``test_corpus_replay`` re-runs every file on
every suite run, forever (regression-corpus policy in docs/TESTING.md).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.quickg import make_quickg
from repro.core.olive import OliveAlgorithm
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import build_scenario
from repro.scenarios.events import (
    CapacityDegradation,
    EventSchedule,
    FlashCrowd,
    IngressMigration,
    LinkFailure,
    LinkRecovery,
    NodeDrain,
    NodeRestore,
    capacity_invariant_gap,
)
from repro.sim.engine import simulate
from repro.workload.request import Request
from tests.test_event_oracle import _assert_event_results_identical
from tests.test_property_invariants import _expected_allocated

CORPUS_DIR = Path(__file__).parent / "corpus"

#: Catalog + one of each generated family, at the families' size floors.
TOPOLOGIES = ("CittaStudi", "tiered-x:26", "waxman:24", "caida-x:24")
TRACES = ("mmpp", "pareto-burst", "ingress-hotspot", "capacity-probe")
ONLINE_SLOTS = 12

#: Injected flash-crowd ids start here — disjoint from any trace id.
_CROWD_ID_BASE = 1_000_000

_scenarios: dict = {}


def _scenario(topology, trace, utilization, seed, with_plan):
    """Build-once cache: hypothesis revisits few distinct scenarios."""
    key = (topology, trace, utilization, seed, with_plan)
    if key not in _scenarios:
        config = ExperimentConfig.test(
            topology=topology,
            trace_kind=trace,
            utilization=utilization,
            history_slots=30,
            online_slots=ONLINE_SLOTS,
            arrivals_per_node=1.0,
            measure_start=2,
            measure_stop=10,
        )
        _scenarios[key] = build_scenario(config, seed, with_plan=with_plan)
    return _scenarios[key]


# -- descriptor -> composed schedule ------------------------------------------


def _block_events(block, scenario, position):
    """The event list for one descriptor block (before shifting)."""
    substrate = scenario.substrate
    links = list(substrate.links)
    nodes = list(substrate.nodes)
    edges = list(substrate.edge_nodes)
    kind = block["kind"]
    slot = block["slot"]
    index = block["index"]
    stop = slot + block["duration"]
    if kind == "flap":
        link = links[index % len(links)]
        return [
            LinkFailure(slot=slot, link=link),
            LinkRecovery(slot=stop, link=link),
        ]
    if kind == "drain":
        node = nodes[index % len(nodes)]
        return [
            NodeDrain(slot=slot, node=node, fraction=block["fraction"]),
            NodeRestore(slot=stop, node=node),
        ]
    if kind == "degrade":
        return [
            CapacityDegradation(
                slot=slot,
                fraction=block["fraction"],
                links=(
                    links[index % len(links)],
                    links[(index + 1) % len(links)],
                ),
                nodes=(nodes[index % len(nodes)],),
            )
        ]
    if kind == "crowd":
        requests = tuple(
            Request(
                arrival=slot,
                id=_CROWD_ID_BASE + 1000 * position + i,
                app_index=(index + i) % len(scenario.apps),
                ingress=edges[(index + i) % len(edges)],
                demand=1.0 + 5.0 * block["fraction"],
                duration=block["duration"],
            )
            for i in range(block["count"])
        )
        return [FlashCrowd(slot=slot, requests=requests)]
    if kind == "migrate":
        return [
            IngressMigration(
                slot=slot,
                source=edges[index % len(edges)],
                target=edges[(index + 1) % len(edges)],
                until=stop,
            )
        ]
    if kind == "stray-recovery":
        # Recovery with no preceding failure: must be a strict no-op.
        return [LinkRecovery(slot=slot, link=links[index % len(links)])]
    raise AssertionError(f"unknown block kind {kind!r}")


def _compose_schedule(descriptor, scenario) -> EventSchedule:
    policy = descriptor["policy"]
    schedules = [
        EventSchedule(
            _block_events(block, scenario, position),
            policy=policy,
            name=block["kind"],
        ).shifted(block["offset"])
        for position, block in enumerate(descriptor["blocks"])
    ]
    return schedules[0].compose(*schedules[1:])


def _check(descriptor) -> None:
    """Run one descriptor through both engines and assert everything."""
    scenario = _scenario(
        descriptor["topology"],
        descriptor["trace"],
        descriptor["utilization"],
        descriptor["seed"],
        with_plan=descriptor["algorithm"] == "OLIVE",
    )
    schedule = _compose_schedule(descriptor, scenario)
    online = scenario.online_requests()

    def make(fast_greedy):
        if descriptor["algorithm"] == "OLIVE":
            return OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                efficiency=scenario.efficiency, use_fast_greedy=fast_greedy,
            )
        return make_quickg(
            scenario.substrate, scenario.apps, scenario.efficiency,
            use_fast_greedy=fast_greedy,
        )

    fast_algorithm = make(True)
    fast = simulate(fast_algorithm, online, ONLINE_SLOTS, events=schedule)
    reference = simulate(make(False), online, ONLINE_SLOTS, events=schedule)

    _assert_event_results_identical(fast, reference)
    assert np.all(fast.allocated_demand >= 0)
    np.testing.assert_allclose(
        fast.allocated_demand, _expected_allocated(fast), rtol=1e-9
    )
    assert capacity_invariant_gap(fast_algorithm) == pytest.approx(
        0.0, abs=1e-6
    )


# -- strategies ---------------------------------------------------------------

#: Bounds chosen so every derived slot (shift + recovery offset) stays
#: inside the 12-slot horizon: 5 + 2 + 3 < 12.
_BLOCKS = st.fixed_dictionaries(
    {
        "kind": st.sampled_from(
            ("flap", "drain", "degrade", "crowd", "migrate",
             "stray-recovery")
        ),
        "slot": st.integers(1, 5),
        "offset": st.integers(0, 2),
        "index": st.integers(0, 63),
        "fraction": st.sampled_from((0.0, 0.25, 0.5)),
        "duration": st.integers(1, 3),
        "count": st.integers(1, 3),
    }
)


@st.composite
def _descriptors(draw):
    # OLIVE needs a plan per scenario; pin its scenario axes so the
    # build-once cache stays small and examples stay sub-second.
    algorithm = draw(
        st.sampled_from(("QUICKG", "QUICKG", "QUICKG", "OLIVE"))
    )
    if algorithm == "OLIVE":
        topology, trace, seed = "CittaStudi", "mmpp", 0
    else:
        topology = draw(st.sampled_from(TOPOLOGIES))
        trace = draw(st.sampled_from(TRACES))
        seed = draw(st.integers(0, 1))
    return {
        "algorithm": algorithm,
        "topology": topology,
        "trace": trace,
        "seed": seed,
        "utilization": draw(st.sampled_from((0.9, 1.3))),
        "policy": draw(st.sampled_from(("preempt", "reroute"))),
        "blocks": draw(st.lists(_BLOCKS, min_size=1, max_size=4)),
    }


# -- the fuzzer ---------------------------------------------------------------


@given(descriptor=_descriptors())
@settings(max_examples=10, deadline=None)
def test_fuzz_composed_scenarios(descriptor):
    """Fast-tier sample of the composed-scenario property."""
    _check(descriptor)


@pytest.mark.slow
@given(descriptor=_descriptors())
@settings(max_examples=200, deadline=None)
def test_fuzz_composed_scenarios_deep(descriptor):
    """The full >=200-example budget CI runs in the slow job."""
    _check(descriptor)


# -- the regression corpus ----------------------------------------------------

CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_populated():
    """The corpus directory must never silently empty out."""
    assert len(CORPUS_FILES) >= 3


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_replay(path):
    """Re-run every committed shrunk counterexample, forever."""
    _check(json.loads(path.read_text()))
