"""Unit tests for repro.apps: the VN model, catalog, and efficiency rules."""

import pytest

from repro.apps.application import ROOT_ID, VNF, Application, VirtualLink, VNFKind
from repro.apps.catalog import (
    ACCELERATOR_SHRINK,
    SIZE_FLOOR,
    draw_standard_mix,
    make_accelerator,
    make_chain,
    make_gpu_chain,
    make_tree,
    make_uniform_type_set,
)
from repro.apps.efficiency import GpuAwareEfficiency, UniformEfficiency
from repro.errors import ApplicationError
from repro.substrate.network import NodeAttrs
from repro.substrate.tiers import Tier


class TestApplicationModel:
    def test_root_must_exist(self):
        with pytest.raises(ApplicationError, match="missing root"):
            Application(
                name="x", vnfs=(VNF(1, 5.0),), links=()
            )

    def test_root_size_must_be_zero(self):
        with pytest.raises(ApplicationError, match="size 0"):
            VNF(ROOT_ID, 3.0, VNFKind.ROOT)

    def test_node_zero_reserved_for_root(self):
        with pytest.raises(ApplicationError, match="reserved"):
            VNF(ROOT_ID, 5.0, VNFKind.GENERIC)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ApplicationError, match="duplicate"):
            Application(
                name="x",
                vnfs=(VNF(0, 0.0, VNFKind.ROOT), VNF(1, 1.0), VNF(1, 2.0)),
                links=(VirtualLink(0, 1, 1.0), VirtualLink(0, 1, 1.0)),
            )

    def test_wrong_link_count_rejected(self):
        with pytest.raises(ApplicationError, match="needs"):
            Application(
                name="x",
                vnfs=(VNF(0, 0.0, VNFKind.ROOT), VNF(1, 1.0)),
                links=(),
            )

    def test_multiple_parents_rejected(self):
        with pytest.raises(ApplicationError, match="multiple parents"):
            Application(
                name="x",
                vnfs=(VNF(0, 0.0, VNFKind.ROOT), VNF(1, 1.0), VNF(2, 1.0)),
                links=(
                    VirtualLink(0, 1, 1.0),
                    VirtualLink(0, 1, 2.0),
                ),
            )

    def test_disconnected_tree_rejected(self):
        with pytest.raises(ApplicationError, match="not connected"):
            Application(
                name="x",
                vnfs=(
                    VNF(0, 0.0, VNFKind.ROOT),
                    VNF(1, 1.0),
                    VNF(2, 1.0),
                    VNF(3, 1.0),
                ),
                links=(
                    VirtualLink(0, 1, 1.0),
                    VirtualLink(2, 3, 1.0),
                    VirtualLink(3, 2, 1.0),
                ),
            )

    def test_negative_sizes_rejected(self):
        with pytest.raises(ApplicationError):
            VNF(1, -1.0)
        with pytest.raises(ApplicationError):
            VirtualLink(0, 1, -1.0)

    def test_bfs_order_parents_first(self, chain_app):
        order = chain_app.links_in_bfs_order()
        assert [l.key for l in order] == [(0, 1), (1, 2)]

    def test_aggregate_sizes(self, chain_app):
        assert chain_app.total_node_size() == 20.0
        assert chain_app.total_link_size() == 10.0
        assert chain_app.root_adjacent_link_size() == 5.0
        assert chain_app.num_vnfs == 2


class TestCatalog:
    def test_chain_structure(self, rng):
        app = make_chain(rng, num_vnfs=4)
        assert app.num_vnfs == 4
        assert [l.key for l in app.links] == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_chain_requires_a_vnf(self, rng):
        with pytest.raises(ApplicationError):
            make_chain(rng, num_vnfs=0)

    def test_tree_has_two_branches(self, rng):
        app = make_tree(rng, num_vnfs=5)
        # Node 1 is the stem and must have exactly two children.
        assert len(app.children_links(1)) == 2
        assert app.num_vnfs == 5

    def test_tree_minimum_size(self, rng):
        with pytest.raises(ApplicationError):
            make_tree(rng, num_vnfs=2)

    def test_accelerator_shrinks_downstream_link(self, rng):
        for _ in range(10):
            app = make_accelerator(rng, num_vnfs=4)
            accel = [v for v in app.vnfs if v.kind is VNFKind.ACCELERATOR]
            assert len(accel) == 1
            downstream = [
                l for l in app.links if l.tail == accel[0].id
            ]
            assert len(downstream) == 1
            # A shrunk link can fall below the floor of un-shrunk sizes
            # only via the 0.3 factor; verify it is plausibly shrunk by
            # checking it against the maximum possible shrunk size.
            assert downstream[0].size <= ACCELERATOR_SHRINK * 1000

    def test_gpu_chain_has_one_gpu_vnf(self, rng):
        app = make_gpu_chain(rng, num_vnfs=5)
        gpu = [v for v in app.vnfs if v.kind is VNFKind.GPU]
        assert len(gpu) == 1

    def test_sizes_respect_floor(self, rng):
        for _ in range(20):
            app = make_chain(rng)
            for vnf in app.non_root_vnfs():
                assert vnf.size >= SIZE_FLOOR

    def test_vnf_count_in_table_iii_range(self, rng):
        counts = {make_chain(rng).num_vnfs for _ in range(50)}
        assert counts <= {3, 4, 5}
        assert len(counts) > 1  # actually random

    def test_standard_mix_composition(self, rng):
        mix = draw_standard_mix(rng)
        assert len(mix) == 4
        names = [app.name for app in mix]
        assert sum("chain" in n for n in names) == 2
        assert sum("tree" in n for n in names) == 1
        assert sum("accelerator" in n for n in names) == 1

    def test_uniform_type_set(self, rng):
        apps = make_uniform_type_set(rng, "gpu", count=3)
        assert len(apps) == 3
        assert all(app.has_kind(VNFKind.GPU) for app in apps)

    def test_uniform_type_set_unknown_type(self, rng):
        with pytest.raises(ApplicationError, match="unknown application type"):
            make_uniform_type_set(rng, "mesh")

    def test_tenant_mix_classes_and_slo_metadata(self, rng):
        from repro.apps.catalog import (
            TENANT_SLOS,
            draw_tenant_mix,
            tenant_class,
        )
        from repro.registry import app_mix_registry

        mix = draw_tenant_mix(rng)
        classes = [tenant_class(app.name) for app in mix]
        assert set(classes) == {"gold", "silver", "bronze"}
        assert tenant_class("standard-chain") is None
        for name in ("tenants", "tenants-premium"):
            entry = app_mix_registry.get(name)
            assert entry.metadata["slo"] is TENANT_SLOS
        # SLO targets tighten with priority.
        assert (
            TENANT_SLOS["gold"]["availability"]
            > TENANT_SLOS["silver"]["availability"]
            > TENANT_SLOS["bronze"]["availability"]
        )

    def test_scale_mix_is_a_single_short_chain(self, rng):
        from repro.apps.catalog import draw_scale_mix

        mix = draw_scale_mix(rng)
        assert len(mix) == 1
        assert mix[0].num_vnfs == 3


class TestEfficiency:
    def test_uniform_is_one_everywhere(self, chain_app):
        model = UniformEfficiency()
        node = NodeAttrs(Tier.EDGE, 1.0, 1.0)
        for vnf in chain_app.vnfs:
            assert model.node_eta(vnf, node) == 1.0
            assert model.placeable(vnf, node)

    def test_gpu_vnf_needs_gpu_node(self):
        model = GpuAwareEfficiency()
        gpu_vnf = VNF(1, 5.0, VNFKind.GPU)
        plain = NodeAttrs(Tier.EDGE, 1.0, 1.0, gpu=False)
        gpu_node = NodeAttrs(Tier.EDGE, 1.0, 1.0, gpu=True)
        assert model.node_eta(gpu_vnf, plain) is None
        assert model.node_eta(gpu_vnf, gpu_node) == 1.0

    def test_generic_vnf_banned_from_gpu_node(self):
        model = GpuAwareEfficiency()
        generic = VNF(1, 5.0, VNFKind.GENERIC)
        gpu_node = NodeAttrs(Tier.EDGE, 1.0, 1.0, gpu=True)
        assert model.node_eta(generic, gpu_node) is None
        assert not model.placeable(generic, gpu_node)

    def test_root_exempt_from_gpu_rules(self):
        model = GpuAwareEfficiency()
        root = VNF(ROOT_ID, 0.0, VNFKind.ROOT)
        gpu_node = NodeAttrs(Tier.EDGE, 1.0, 1.0, gpu=True)
        assert model.node_eta(root, gpu_node) == 1.0
