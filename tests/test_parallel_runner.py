"""Tests for the parallel experiment orchestration subsystem.

Covers the three pieces the subsystem is made of:

* :class:`repro.sim.runner.ParallelRunner` — ``jobs=1`` and ``jobs=4``
  must produce identical :class:`ConfidenceInterval` results;
* :mod:`repro.experiments.cache` — hit / miss / invalidation semantics;
* the CLI flags (``--jobs``, ``--no-cache``, ``--cache-dir``, ``all``).
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.experiments import cache as cache_mod
from repro.experiments import figures
from repro.experiments.__main__ import FIGURES, RENDERERS, build_parser, main
from repro.experiments.cache import (
    ResultCache,
    configure_cache,
    get_active_cache,
    result_key,
)
from repro.experiments.config import ExperimentConfig
from repro.sim import runner as runner_mod
from repro.sim.runner import (
    ConfidenceInterval,
    ParallelRunner,
    get_default_runner,
    repeat_runs,
    shutdown_pools,
)


def deterministic_run(seed: int) -> dict[str, float]:
    """Module-level (hence picklable) stand-in for one repetition."""
    return {"rejection": (seed * 37 % 11) / 10.0, "cost": float(seed**2)}


class TestParallelRunner:
    def test_jobs4_identical_to_jobs1(self):
        serial = ParallelRunner(jobs=1).repeat(deterministic_run, 8, 5)
        parallel = ParallelRunner(jobs=4).repeat(deterministic_run, 8, 5)
        assert serial == parallel
        assert isinstance(serial["rejection"], ConfidenceInterval)
        assert serial["cost"].count == 8

    def test_matches_legacy_repeat_runs(self):
        legacy = repeat_runs(deterministic_run, 6, 2)
        pooled = ParallelRunner(jobs=3).repeat(deterministic_run, 6, 2)
        assert legacy == pooled

    def test_serial_fallback_accepts_closures(self):
        seen = []

        def run(seed: int) -> dict[str, float]:
            seen.append(seed)
            return {"m": float(seed)}

        summary = ParallelRunner(jobs=1).repeat(run, 3, base_seed=10)
        assert seen == [10, 11, 12]
        assert summary["m"].mean == 11.0

    def test_jobs_must_be_positive(self):
        with pytest.raises(SimulationError):
            ParallelRunner(jobs=0)

    def test_repetitions_must_be_positive(self):
        with pytest.raises(SimulationError):
            ParallelRunner(jobs=2).repeat(deterministic_run, 0)

    def test_from_jobs_zero_means_cpu_count(self):
        import os

        assert ParallelRunner.from_jobs(0).jobs == (os.cpu_count() or 1)
        assert ParallelRunner.from_jobs(3).jobs == 3


def _crash_worker(seed: int) -> dict[str, float]:
    """Kill the worker process outright to break the pool."""
    import os

    os._exit(13)


class TestPoolLifecycle:
    def test_shutdown_pools_reaps_executors(self):
        runner = ParallelRunner(jobs=2)
        runner.repeat(deterministic_run, repetitions=2)
        assert len(runner_mod._pools) >= 1
        assert shutdown_pools() >= 1
        assert runner_mod._pools == {}
        # A fresh repeat after shutdown transparently builds a new pool.
        summary = runner.repeat(deterministic_run, repetitions=2)
        assert summary["cost"].count == 2
        shutdown_pools()

    def test_broken_pool_is_shut_down_on_eviction(self):
        from concurrent.futures.process import BrokenProcessPool

        runner = ParallelRunner(jobs=2)
        with pytest.raises(BrokenProcessPool):
            runner.repeat(_crash_worker, repetitions=2)
        # The poisoned executor was evicted *and* shut down — no zombie
        # entry remains for this worker count.
        assert 2 not in runner_mod._pools
        # The next run works again on a fresh pool.
        summary = runner.repeat(deterministic_run, repetitions=2)
        assert summary["cost"].count == 2
        shutdown_pools()


class TestInconsistentKeys:
    def test_error_names_repetition_and_key_diff(self):
        def run(seed: int) -> dict[str, float]:
            if seed == 2:
                return {"other": 1.0}
            return {"expected": 1.0}

        with pytest.raises(SimulationError) as excinfo:
            repeat_runs(run, 4, base_seed=0)
        message = str(excinfo.value)
        assert "repetition 2" in message
        assert "missing ['expected']" in message
        assert "unexpected ['other']" in message

    def test_error_is_identical_under_parallelism(self):
        def run(seed: int) -> dict[str, float]:
            return {"a": 1.0} if seed != 1 else {"b": 2.0}

        with pytest.raises(SimulationError, match="repetition 1"):
            ParallelRunner(jobs=1).repeat(run, 3)
        with pytest.raises(SimulationError, match="repetition 1"):
            ParallelRunner(jobs=2).repeat(_flaky_keys, 3)


def _flaky_keys(seed: int) -> dict[str, float]:
    """Picklable variant of the inconsistent-keys run."""
    return {"a": 1.0} if seed != 1 else {"b": 2.0}


@pytest.fixture
def sample_summary():
    return {
        "OLIVE:rejection_rate": ConfidenceInterval(
            mean=0.1, half_width=0.02, confidence=0.95, count=4
        ),
        "QUICKG:rejection_rate": ConfidenceInterval(
            mean=0.2, half_width=0.0, confidence=0.95, count=1
        ),
    }


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path, sample_summary):
        cache = ResultCache(tmp_path)
        key = result_key(ExperimentConfig.test(), "sweep", ["OLIVE"])
        assert cache.get(key) is None
        cache.put(key, sample_summary)
        assert cache.get(key) == sample_summary
        assert cache.hits == 1 and cache.misses == 1

    def test_key_changes_with_parameters(self):
        config = ExperimentConfig.test()
        base = result_key(config, "sweep", ["OLIVE"])
        assert result_key(config, "sweep", ["QUICKG"]) != base
        assert result_key(config, "other", ["OLIVE"]) != base
        assert (
            result_key(config.with_(utilization=1.4), "sweep", ["OLIVE"])
            != base
        )
        assert (
            result_key(config, "sweep", ["OLIVE"], extra={"num_quantiles": 2})
            != base
        )

    def test_key_is_stable(self):
        config = ExperimentConfig.test()
        assert result_key(config, "sweep", ["OLIVE"]) == result_key(
            config, "sweep", ["OLIVE"]
        )

    def test_code_change_invalidates(self, tmp_path, monkeypatch,
                                     sample_summary):
        config = ExperimentConfig.test()
        cache = ResultCache(tmp_path)
        cache.put(result_key(config, "sweep", ["OLIVE"]), sample_summary)
        monkeypatch.setattr(
            cache_mod, "code_fingerprint", lambda: "different-code"
        )
        assert cache.get(result_key(config, "sweep", ["OLIVE"])) is None

    def test_clear_removes_entries(self, tmp_path, sample_summary):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, sample_summary)
        cache.put("b" * 64, sample_summary)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_clear_sweeps_leaked_temp_files(self, tmp_path, sample_summary):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, sample_summary)
        # Simulate a writer that crashed between write_text and replace.
        shard = tmp_path / "cc"
        shard.mkdir()
        leak = shard / ("c" * 64 + ".tmp12345")
        leak.write_text("{half-written")
        assert cache.clear() == 1  # temp droppings are not counted...
        assert not leak.exists()  # ...but they are removed
        assert len(cache) == 0

    def test_mixed_key_types_hash_deterministically(self):
        config = ExperimentConfig.test()
        extra = {1: "a", "b": 2, 2.5: "c"}
        key = result_key(config, "sweep", ["OLIVE"], extra=extra)
        assert key == result_key(config, "sweep", ["OLIVE"], extra=extra)

    def test_colliding_stringified_keys_are_rejected(self):
        config = ExperimentConfig.test()
        with pytest.raises(SimulationError, match="stringify uniquely"):
            result_key(
                config, "sweep", ["OLIVE"], extra={"extra": {1: "a", "1": "b"}}
            )

    def test_unwritable_root_warns_instead_of_crashing(self, tmp_path,
                                                       sample_summary):
        blocker = tmp_path / "file-not-dir"
        blocker.write_text("")
        cache = ResultCache(blocker)
        with pytest.warns(UserWarning, match="cache write failed"):
            cache.put("d" * 64, sample_summary)

    def test_unreadable_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "c" * 64
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text("not json {")
        assert cache.get(key) is None

    def test_configure_cache_toggles_global(self, tmp_path):
        active = configure_cache(enabled=True, root=tmp_path)
        assert get_active_cache() is active
        assert active.root == tmp_path
        assert configure_cache(enabled=False) is None
        assert get_active_cache() is None


class TestSweepCaching:
    """_sweep consults the active cache and skips recomputation on a hit."""

    @pytest.fixture
    def counted_sweep(self, monkeypatch):
        calls = []

        def fake_run_single(config, seed, algorithms, **kwargs):
            calls.append(seed)
            return None, {}

        def fake_summarize(scenario, results):
            return {"OLIVE:rejection_rate": 0.25}

        monkeypatch.setattr(figures, "run_single", fake_run_single)
        monkeypatch.setattr(figures, "summarize_run", fake_summarize)
        return calls

    def test_hit_skips_recompute(self, tmp_path, counted_sweep):
        configure_cache(enabled=True, root=tmp_path)
        config = ExperimentConfig.test(repetitions=2)
        first = figures._sweep(config, ["OLIVE"])
        assert counted_sweep == [0, 1]
        second = figures._sweep(config, ["OLIVE"])
        assert counted_sweep == [0, 1]  # no recomputation
        assert first == second

    def test_changed_point_recomputes(self, tmp_path, counted_sweep):
        configure_cache(enabled=True, root=tmp_path)
        config = ExperimentConfig.test(repetitions=1)
        figures._sweep(config, ["OLIVE"])
        figures._sweep(config.with_(utilization=1.4), ["OLIVE"])
        assert counted_sweep == [0, 0]  # both points computed once

    def test_disabled_cache_always_recomputes(self, counted_sweep):
        configure_cache(enabled=False)
        config = ExperimentConfig.test(repetitions=1)
        figures._sweep(config, ["OLIVE"])
        figures._sweep(config, ["OLIVE"])
        assert counted_sweep == [0, 0]


class TestCli:
    def test_parser_accepts_new_flags(self):
        args = build_parser().parse_args(
            ["fig6", "--jobs", "4", "--no-cache", "--cache-dir", "/tmp/x"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/x"

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.jobs == 1
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_all_is_a_target_and_covers_every_figure(self):
        args = build_parser().parse_args(["all"])
        assert args.figure == "all"
        assert set(RENDERERS) == set(FIGURES)

    def test_jobs_must_be_int(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--jobs", "many"])

    def test_negative_jobs_is_a_clean_parser_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig6", "--jobs", "-1"])
        assert excinfo.value.code == 2
        assert "--jobs must be >= 0" in capsys.readouterr().err

    def test_main_configures_runner_and_cache(self, tmp_path, capsys):
        # fig12 on a non-Iris topology exits early (code 2) after global
        # configuration — a cheap probe that the flags take effect.
        code = main(
            [
                "fig12",
                "--topology",
                "CittaStudi",
                "--scale",
                "test",
                "--jobs",
                "3",
                "--cache-dir",
                str(tmp_path / "cli-cache"),
            ]
        )
        assert code == 2
        assert get_default_runner().jobs == 3
        assert get_active_cache().root == tmp_path / "cli-cache"

    def test_main_no_cache_disables_cache(self, capsys):
        code = main(
            ["fig12", "--topology", "CittaStudi", "--scale", "test",
             "--no-cache"]
        )
        assert code == 2
        assert get_active_cache() is None


@pytest.mark.slow
class TestEndToEndParallelism:
    """Full-pipeline determinism: a real sweep, serial vs process pool."""

    def test_sweep_identical_across_job_counts(self):
        config = ExperimentConfig.test(
            history_slots=80,
            online_slots=16,
            measure_start=2,
            measure_stop=14,
            repetitions=2,
        )
        serial = figures._sweep(config, ["OLIVE"], ParallelRunner(jobs=1))
        pooled = figures._sweep(config, ["OLIVE"], ParallelRunner(jobs=2))
        wallclock = (":runtime", ":slots_per_sec", ":requests_per_sec")
        for metric in serial:
            if metric.endswith(wallclock):
                continue  # wall-clock is inherently nondeterministic
            assert serial[metric] == pooled[metric], metric
