"""Tests for the command-line experiment runner (repro.experiments.__main__)."""

import pytest

from repro.experiments.__main__ import FIGURES, SCALES, main


class TestCli:
    def test_list_prints_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--scale", "galactic"])

    def test_scales_cover_presets(self):
        assert set(SCALES) == {"paper", "bench", "test"}

    def test_fig12_requires_iris(self, capsys):
        assert main(["fig12", "--topology", "CittaStudi", "--scale", "test"]) == 2
        assert "Franklin" in capsys.readouterr().out

    def test_fig12_runs_at_test_scale(self, capsys):
        code = main(["fig12", "--topology", "Iris", "--scale", "test"])
        assert code == 0
        out = capsys.readouterr().out
        assert "guarantee" in out

    @pytest.mark.slow
    def test_fig10_runs_at_test_scale(self, capsys):
        code = main(
            ["fig10", "--topology", "CittaStudi", "--scale", "test"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rejection_rate" in out
