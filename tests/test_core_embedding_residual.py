"""Unit tests for repro.core.embedding and repro.core.residual."""

import pytest

from repro.apps.application import ROOT_ID, VNF, VNFKind
from repro.apps.efficiency import GpuAwareEfficiency, UniformEfficiency
from repro.core.embedding import ElementLoads, Embedding, compute_loads
from repro.core.residual import PlanResidual, ResidualState
from repro.errors import SimulationError
from repro.plan.pattern import ClassPlan, EmbeddingPattern, Plan
from repro.stats.aggregate import AggregateRequest


@pytest.fixture
def collocated_embedding():
    return Embedding(
        node_map={ROOT_ID: "edge-a", 1: "transport", 2: "transport"},
        link_paths={(0, 1): (("edge-a", "transport"),), (1, 2): ()},
    )


class TestComputeLoads:
    def test_node_and_link_loads(self, line_substrate, chain_app, collocated_embedding):
        loads = compute_loads(
            chain_app, 2.0, collocated_embedding, line_substrate,
            UniformEfficiency(),
        )
        # Two VNFs of β=10 at demand 2 collocated on transport.
        assert loads.nodes == {"transport": pytest.approx(40.0)}
        # Only the θ→v1 link (β=5) crosses the substrate link.
        assert loads.links == {("edge-a", "transport"): pytest.approx(10.0)}

    def test_root_contributes_no_load(self, line_substrate, chain_app, collocated_embedding):
        loads = compute_loads(
            chain_app, 1.0, collocated_embedding, line_substrate,
            UniformEfficiency(),
        )
        assert "edge-a" not in loads.nodes

    def test_cost_per_slot(self, line_substrate, chain_app, collocated_embedding):
        loads = compute_loads(
            chain_app, 2.0, collocated_embedding, line_substrate,
            UniformEfficiency(),
        )
        # transport cost 10/CU × 40 + link cost 1/CU × 10.
        assert loads.cost_per_slot(line_substrate) == pytest.approx(410.0)

    def test_forbidden_placement_raises(self, line_substrate, chain_app, collocated_embedding):
        class Forbidding(GpuAwareEfficiency):
            def node_eta(self, vnf, node):
                if vnf.kind is VNFKind.ROOT:
                    return 1.0
                return None

        with pytest.raises(SimulationError, match="forbidden"):
            compute_loads(
                chain_app, 1.0, collocated_embedding, line_substrate,
                Forbidding(),
            )

    def test_is_collocated(self, collocated_embedding):
        assert collocated_embedding.is_collocated()
        spread = Embedding(
            node_map={ROOT_ID: "a", 1: "b", 2: "c"}, link_paths={}
        )
        assert not spread.is_collocated()

    def test_from_pattern_copies(self):
        pattern = EmbeddingPattern(
            node_map={0: "a", 1: "b"},
            link_paths={(0, 1): (("a", "b"),)},
            weight=0.5,
        )
        embedding = Embedding.from_pattern(pattern)
        embedding.node_map[1] = "c"
        assert pattern.node_map[1] == "b"  # pattern untouched


class TestResidualState:
    def test_initial_residual_equals_capacity(self, line_substrate):
        residual = ResidualState(line_substrate)
        assert residual.nodes["edge-a"] == 1000.0
        assert residual.links[("edge-a", "transport")] == 500.0

    def test_allocate_release_roundtrip(self, line_substrate):
        residual = ResidualState(line_substrate)
        loads = ElementLoads(
            nodes={"edge-a": 100.0}, links={("edge-a", "transport"): 50.0}
        )
        residual.allocate(loads)
        assert residual.nodes["edge-a"] == 900.0
        residual.release(loads)
        assert residual.nodes["edge-a"] == 1000.0

    def test_fits_boundary(self, line_substrate):
        residual = ResidualState(line_substrate)
        assert residual.fits(ElementLoads(nodes={"edge-a": 1000.0}))
        assert not residual.fits(ElementLoads(nodes={"edge-a": 1000.1}))

    def test_shortfall(self, line_substrate):
        residual = ResidualState(line_substrate)
        residual.allocate(ElementLoads(nodes={"edge-a": 950.0}))
        gap = residual.shortfall(
            ElementLoads(
                nodes={"edge-a": 100.0},
                links={("edge-a", "transport"): 10.0},
            )
        )
        assert gap.nodes == {"edge-a": pytest.approx(50.0)}
        assert gap.links == {}

    def test_overallocation_raises(self, line_substrate):
        residual = ResidualState(line_substrate)
        with pytest.raises(SimulationError, match="negative"):
            residual.allocate(ElementLoads(nodes={"edge-a": 2000.0}))

    def test_node_utilization(self, line_substrate):
        residual = ResidualState(line_substrate)
        residual.allocate(ElementLoads(nodes={"edge-a": 250.0}))
        assert residual.node_utilization("edge-a") == pytest.approx(0.25)


def _plan_with_two_patterns() -> Plan:
    aggregate = AggregateRequest(app_index=0, ingress="edge-a", demand=100.0)
    patterns = [
        EmbeddingPattern(node_map={0: "edge-a"}, link_paths={}, weight=0.6),
        EmbeddingPattern(node_map={0: "edge-a"}, link_paths={}, weight=0.4),
    ]
    class_plan = ClassPlan(
        aggregate=aggregate, patterns=patterns, rejected_fraction=0.0
    )
    return Plan(classes={aggregate.class_key: class_plan})


class TestPlanResidual:
    def test_initial_capacity_from_weights(self):
        residual = PlanResidual(_plan_with_two_patterns())
        key = (0, "edge-a")
        assert residual.residual[(key, 0)] == pytest.approx(60.0)
        assert residual.residual[(key, 1)] == pytest.approx(40.0)
        assert residual.guaranteed_remaining(key) == pytest.approx(100.0)

    def test_full_fit_prefers_largest_residual(self):
        residual = PlanResidual(_plan_with_two_patterns())
        key = (0, "edge-a")
        assert residual.find_full_fit(key, 10.0) == 0
        residual.draw(key, 0, 55.0)
        assert residual.find_full_fit(key, 10.0) == 1

    def test_full_fit_none_when_demand_too_large(self):
        residual = PlanResidual(_plan_with_two_patterns())
        assert residual.find_full_fit((0, "edge-a"), 70.0) is None

    def test_partial_fit_requires_positive_residual(self):
        residual = PlanResidual(_plan_with_two_patterns())
        key = (0, "edge-a")
        residual.draw(key, 0, 60.0)
        residual.draw(key, 1, 40.0)
        assert residual.find_partial_fit(key) is None
        residual.release(key, 1, 5.0)
        assert residual.find_partial_fit(key) == 1

    def test_unknown_class_has_no_fit(self):
        residual = PlanResidual(_plan_with_two_patterns())
        assert residual.find_full_fit((9, "zz"), 1.0) is None
        assert residual.find_partial_fit((9, "zz")) is None
        assert residual.guaranteed_remaining((9, "zz")) == 0.0

    def test_overdraw_raises(self):
        residual = PlanResidual(_plan_with_two_patterns())
        with pytest.raises(SimulationError):
            residual.draw((0, "edge-a"), 0, 61.0)
