"""Property-based tests on the online algorithms' bookkeeping.

For random request sequences, the residual state the algorithm maintains
incrementally must equal capacity minus the independently recomputed loads
of its active allocations — after every prefix of events.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.application import ROOT_ID
from repro.baselines.quickg import make_quickg
from repro.core.embedding import compute_loads
from repro.core.olive import OliveAlgorithm
from repro.plan.pattern import ClassPlan, EmbeddingPattern, Plan
from repro.stats.aggregate import AggregateRequest
from repro.workload.request import Request
from tests.conftest import make_line_substrate, make_two_vnf_chain


@st.composite
def request_sequences(draw):
    """Random arrival/departure interleavings over 12 slots."""
    count = draw(st.integers(1, 25))
    requests = []
    for i in range(count):
        requests.append(
            Request(
                arrival=draw(st.integers(0, 11)),
                id=i,
                app_index=0,
                ingress=draw(st.sampled_from(["edge-a", "edge-b"])),
                demand=draw(
                    st.floats(0.5, 30.0, allow_nan=False, allow_infinity=False)
                ),
                duration=draw(st.integers(1, 8)),
            )
        )
    return sorted(requests)


def _plan_for_edge_a() -> Plan:
    aggregate = AggregateRequest(app_index=0, ingress="edge-a", demand=40.0)
    pattern = EmbeddingPattern(
        node_map={ROOT_ID: "edge-a", 1: "transport", 2: "transport"},
        link_paths={(0, 1): (("edge-a", "transport"),), (1, 2): ()},
        weight=1.0,
    )
    return Plan(
        classes={
            aggregate.class_key: ClassPlan(
                aggregate=aggregate, patterns=[pattern], rejected_fraction=0.0
            )
        }
    )


def _check_bookkeeping(algorithm, substrate, apps, requests):
    """Drive the algorithm slot by slot, re-deriving residuals each slot."""
    by_arrival: dict[int, list] = {}
    by_departure: dict[int, list] = {}
    for request in requests:
        by_arrival.setdefault(request.arrival, []).append(request)
        by_departure.setdefault(request.departure, []).append(request)

    for t in range(12 + 9):
        for request in by_departure.get(t, []):
            algorithm.release(request)
        for request in by_arrival.get(t, []):
            algorithm.process(request)

        expected_nodes = {
            v: substrate.node_capacity(v) for v in substrate.nodes
        }
        expected_links = {
            l: substrate.link_capacity(l) for l in substrate.links
        }
        for allocation in algorithm.active.values():
            loads = compute_loads(
                apps[allocation.request.app_index],
                allocation.request.demand,
                allocation.embedding,
                substrate,
                algorithm.efficiency,
            )
            for node, load in loads.nodes.items():
                expected_nodes[node] -= load
            for link, load in loads.links.items():
                expected_links[link] -= load
        for node, expected in expected_nodes.items():
            assert algorithm.residual.nodes[node] == pytest.approx(
                expected, abs=1e-6
            ), (t, node)
            assert expected >= -1e-6, f"capacity violated at {node}"
        for link, expected in expected_links.items():
            assert algorithm.residual.links[link] == pytest.approx(
                expected, abs=1e-6
            ), (t, link)
            assert expected >= -1e-6, f"capacity violated at {link}"


@given(request_sequences())
@settings(max_examples=30, deadline=None)
def test_quickg_residual_bookkeeping_is_exact(requests):
    substrate = make_line_substrate(node_capacity=800.0, link_capacity=300.0)
    apps = [make_two_vnf_chain()]
    _check_bookkeeping(make_quickg(substrate, apps), substrate, apps, requests)


@given(request_sequences())
@settings(max_examples=30, deadline=None)
def test_olive_residual_bookkeeping_is_exact(requests):
    substrate = make_line_substrate(node_capacity=800.0, link_capacity=300.0)
    apps = [make_two_vnf_chain()]
    algorithm = OliveAlgorithm(substrate, apps, _plan_for_edge_a())
    _check_bookkeeping(algorithm, substrate, apps, requests)


@given(request_sequences())
@settings(max_examples=20, deadline=None)
def test_olive_plan_residual_never_negative(requests):
    substrate = make_line_substrate(node_capacity=800.0, link_capacity=300.0)
    apps = [make_two_vnf_chain()]
    algorithm = OliveAlgorithm(substrate, apps, _plan_for_edge_a())
    for request in requests:
        algorithm.process(request)
        for value in algorithm.plan_residual.residual.values():
            assert value >= -1e-6
