"""Flow decomposition on branching (tree) virtual networks."""

import pytest

from repro.apps.application import ROOT_ID, VNF, Application, VirtualLink, VNFKind
from repro.plan.decompose import decompose_class


@pytest.fixture
def fork_app() -> Application:
    """θ → v1, v1 → {v2, v3}: the two-branch tree of the catalog."""
    return Application(
        name="fork",
        vnfs=(
            VNF(ROOT_ID, 0.0, VNFKind.ROOT),
            VNF(1, 10.0),
            VNF(2, 10.0),
            VNF(3, 10.0),
        ),
        links=(
            VirtualLink(ROOT_ID, 1, 5.0),
            VirtualLink(1, 2, 5.0),
            VirtualLink(1, 3, 5.0),
        ),
    )


class TestTreeDecomposition:
    def test_branches_can_map_to_different_hosts(self, fork_app):
        # v1 on transport; v2 stays with v1, v3 continues to core.
        node_mass = {
            ROOT_ID: {"edge-a": 1.0},
            1: {"transport": 1.0},
            2: {"transport": 1.0},
            3: {"core": 1.0},
        }
        arc_flow = {
            (0, 1): {("edge-a", "transport"): 1.0},
            (1, 2): {},
            (1, 3): {("transport", "core"): 1.0},
        }
        patterns, lost = decompose_class(
            fork_app, "edge-a", node_mass, arc_flow
        )
        assert lost == pytest.approx(0.0, abs=1e-9)
        assert len(patterns) == 1
        pattern = patterns[0]
        assert pattern.node_map == {
            0: "edge-a", 1: "transport", 2: "transport", 3: "core"
        }
        assert pattern.link_paths[(1, 2)] == ()
        assert pattern.link_paths[(1, 3)] == (("core", "transport"),)

    def test_split_at_the_fork(self, fork_app):
        # v1 split between transport (0.4) and edge-a (0.6); children
        # follow their parent's placement.
        node_mass = {
            ROOT_ID: {"edge-a": 1.0},
            1: {"transport": 0.4, "edge-a": 0.6},
            2: {"transport": 0.4, "edge-a": 0.6},
            3: {"transport": 0.4, "edge-a": 0.6},
        }
        arc_flow = {
            (0, 1): {("edge-a", "transport"): 0.4},
            (1, 2): {},
            (1, 3): {},
        }
        patterns, lost = decompose_class(
            fork_app, "edge-a", node_mass, arc_flow
        )
        assert lost == pytest.approx(0.0, abs=1e-9)
        assert sum(p.weight for p in patterns) == pytest.approx(1.0)
        hosts = {p.node_map[1] for p in patterns}
        assert hosts == {"edge-a", "transport"}
        for pattern in patterns:
            # Children collocate with v1 in both patterns here.
            assert pattern.node_map[2] == pattern.node_map[1]
            assert pattern.node_map[3] == pattern.node_map[1]

    def test_branch_split_below_the_fork(self, fork_app):
        # v1 fully on transport, but v3 splits between transport and core.
        node_mass = {
            ROOT_ID: {"edge-a": 1.0},
            1: {"transport": 1.0},
            2: {"transport": 1.0},
            3: {"transport": 0.5, "core": 0.5},
        }
        arc_flow = {
            (0, 1): {("edge-a", "transport"): 1.0},
            (1, 2): {},
            (1, 3): {("transport", "core"): 0.5},
        }
        patterns, lost = decompose_class(
            fork_app, "edge-a", node_mass, arc_flow
        )
        assert lost == pytest.approx(0.0, abs=1e-9)
        assert len(patterns) == 2
        v3_hosts = sorted(p.node_map[3] for p in patterns)
        assert v3_hosts == ["core", "transport"]
        for pattern in patterns:
            assert pattern.weight == pytest.approx(0.5)
