"""The vectorized batch kernel and the adaptive PathCache bypass.

Three layers of enforcement for the embedding fast path:

* **whole-sim bit-identity** — every ``cache_mode`` (adaptive, pinned
  banded, pinned direct) on both engines, calibrated both below and
  above the bypass payoff threshold, must reproduce the frozen scalar
  reference exactly (the speed machinery may never touch decisions);
* **kernel unit semantics** — the chunk cost evaluation against a
  scalar replay oracle, density gating, ``mark_done`` skipping, and the
  monotone-damage fast path's rise-counter certificate (a mid-window
  release must disarm it without changing any result);
* **controller mechanics** — :class:`repro.core.greedy._BypassController`
  state transitions are deterministic counters: probe window, hold
  window, payoff-floor calibration, pinned modes.
"""

from __future__ import annotations

import importlib
import importlib.util

import numpy as np
import pytest

from repro.baselines.quickg import make_quickg
from repro.core import batch_kernel, greedy_reference
from repro.core.embedding import compute_loads
from repro.core.greedy import GreedyContext, _BypassController
from repro.core.olive import OliveAlgorithm
from repro.core.residual import ResidualState
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import build_scenario
from repro.sim.engine import simulate
from repro.sim.session import SimulationSession
from tests.test_fastpath_equivalence import assert_results_identical

_scenarios: dict = {}
_references: dict = {}


def _scenario(engine: str):
    """Build-once scenario per engine (the plan build dominates)."""
    if engine not in _scenarios:
        config = ExperimentConfig.test(utilization=1.2)
        _scenarios[engine] = build_scenario(
            config, seed=3, with_plan=engine == "OLIVE"
        )
    return _scenarios[engine]


def _make(engine: str, scenario, **kwargs):
    if engine == "OLIVE":
        return OliveAlgorithm(
            scenario.substrate, scenario.apps, scenario.plan,
            efficiency=scenario.efficiency, **kwargs,
        )
    return make_quickg(
        scenario.substrate, scenario.apps, scenario.efficiency, **kwargs
    )


def _reference_result(engine: str):
    """One frozen-reference run per engine, shared across parametrize."""
    if engine not in _references:
        scenario = _scenario(engine)
        _references[engine] = simulate(
            _make(engine, scenario, use_fast_greedy=False),
            scenario.online_requests(),
            scenario.config.online_slots,
        )
    return _references[engine]


# -- whole-sim bit-identity across every bypass configuration -----------------


class TestWholeSimIdentity:
    @pytest.mark.parametrize("engine", ["OLIVE", "QUICKG"])
    @pytest.mark.parametrize("cache_mode", ["adaptive", "banded", "direct"])
    @pytest.mark.parametrize(
        "offers_per_slot",
        [1.0, 1000.0],
        ids=["below-payoff", "above-payoff"],
    )
    def test_modes_match_reference(
        self, engine, cache_mode, offers_per_slot
    ):
        """Both sides of the payoff threshold, every mode, bit-equal."""
        scenario = _scenario(engine)
        payoff_scale = offers_per_slot * len(scenario.substrate.nodes)
        assert (payoff_scale < _BypassController.PAYOFF_FLOOR) == (
            offers_per_slot == 1.0
        )
        fast = simulate(
            _make(
                engine, scenario,
                greedy_cache_mode=cache_mode,
                expected_offers_per_slot=offers_per_slot,
            ),
            scenario.online_requests(),
            scenario.config.online_slots,
        )
        assert_results_identical(fast, _reference_result(engine))

    def test_forced_numpy_backend_matches(self, monkeypatch):
        """REPRO_BATCH_BACKEND=numpy is the oracle; auto must agree."""
        monkeypatch.setenv("REPRO_BATCH_BACKEND", "numpy")
        try:
            importlib.reload(batch_kernel)
            assert batch_kernel.BACKEND_NAME == "numpy"
            scenario = _scenario("QUICKG")
            fast = simulate(
                _make("QUICKG", scenario),
                scenario.online_requests(),
                scenario.config.online_slots,
            )
            assert_results_identical(fast, _reference_result("QUICKG"))
        finally:
            monkeypatch.delenv("REPRO_BATCH_BACKEND")
            importlib.reload(batch_kernel)

    def test_backend_resolution(self):
        """Without numba installed the fallback must self-select."""
        assert batch_kernel.BACKEND_NAME in ("numpy", "numba")
        if importlib.util.find_spec("numba") is None:
            assert batch_kernel.BACKEND_NAME == "numpy"

    def test_invalid_backend_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_BACKEND", "cython")
        try:
            with pytest.raises(ValueError, match="REPRO_BATCH_BACKEND"):
                importlib.reload(batch_kernel)
        finally:
            monkeypatch.delenv("REPRO_BATCH_BACKEND")
            importlib.reload(batch_kernel)


# -- process_many ≡ sequential process ----------------------------------------


def test_process_many_equals_sequential_process():
    """The session bulk path and the per-request path must be
    indistinguishable: identical decisions AND identical final residual
    arrays (the batch kernel commits against live residuals in order)."""
    scenario = _scenario("OLIVE")
    online = scenario.online_requests()
    slots = scenario.config.online_slots
    by_slot: dict[int, list] = {}
    for request in sorted(online):
        by_slot.setdefault(request.arrival, []).append(request)

    bulk_algorithm = _make("OLIVE", scenario)
    bulk_session = SimulationSession(bulk_algorithm, online, slots)
    for _ in range(slots):
        bulk_session.step()
    bulk = bulk_session.result()

    seq_algorithm = _make("OLIVE", scenario)
    seq_session = SimulationSession(seq_algorithm, [], slots)
    for slot in range(slots):
        seq_session.begin_slot()
        for request in by_slot.get(slot, ()):
            seq_session.process(request)
        seq_session.close_slot()
    sequential = seq_session.result()

    assert_results_identical(sequential, bulk)
    assert np.array_equal(
        seq_algorithm.residual.node_array(),
        bulk_algorithm.residual.node_array(),
    )
    assert np.array_equal(
        seq_algorithm.residual.link_array(),
        bulk_algorithm.residual.link_array(),
    )


# -- the chunk cost kernel vs a scalar replay oracle --------------------------


def test_chunk_cost_numpy_matches_scalar_replay():
    """Bit-for-bit: the partial-sum table must reproduce the scalar
    settle-order replay (same multiply-then-add per element)."""
    rng = np.random.default_rng(11)
    num_requests, num_nodes = 17, 29
    loads = rng.uniform(0.5, 8.0, num_requests)
    node_loads = rng.uniform(0.1, 4.0, num_requests)
    node_cost = rng.uniform(0.5, 3.0, num_nodes)
    unit_cost = 1.75
    depths = rng.integers(-1, 7, size=(num_requests, num_nodes))

    got = batch_kernel._chunk_cost_numpy(
        loads, unit_cost, depths, node_loads, node_cost
    )

    expected = np.empty((num_requests, num_nodes))
    for r in range(num_requests):
        increment = loads[r] * unit_cost
        partial = [0.0]
        for _ in range(int(depths.max())):
            partial.append(partial[-1] + increment)
        for v in range(num_nodes):
            depth = int(depths[r, v])
            dist = partial[depth] if depth >= 0 else np.inf
            expected[r, v] = node_loads[r] * node_cost[v] + dist
    assert np.array_equal(got, expected)


def test_chunk_cost_handles_all_unreached():
    got = batch_kernel._chunk_cost_numpy(
        np.array([2.0]),
        1.0,
        np.array([[-1, -1, -1]]),
        np.array([1.0]),
        np.array([1.0, 2.0, 3.0]),
    )
    assert np.all(np.isinf(got))


# -- plan-level mechanics -----------------------------------------------------


def _greedy_pairs(scenario, limit=None):
    """(request, app) pairs for the single-group slot-0 style workload."""
    pairs = [
        (request, scenario.apps[request.app_index])
        for request in scenario.online_requests()
    ]
    return pairs[:limit] if limit else pairs


def _fresh_context(scenario, **kwargs):
    residual = ResidualState(scenario.substrate)
    return GreedyContext(
        scenario.substrate, scenario.efficiency, residual, **kwargs
    )


def test_density_gate_skips_speculation():
    scenario = _scenario("QUICKG")
    ctx = _fresh_context(scenario)
    pairs = _greedy_pairs(scenario, limit=8)

    ctx.batch_density = GreedyContext.MIN_BATCH_DENSITY / 2
    assert ctx.begin_batch(pairs) is None
    ctx.end_batch()

    ctx.batch_density = 1.0
    plan = ctx.begin_batch(pairs)
    assert plan is not None
    ctx.end_batch()


def test_density_remeasured_even_without_plan():
    """A gated window still measures density, so batching re-engages."""
    scenario = _scenario("QUICKG")
    ctx = _fresh_context(scenario)
    pairs = _greedy_pairs(scenario, limit=4)
    ctx.batch_density = 0.0
    assert ctx.begin_batch(pairs) is None
    for request, app in pairs:
        ctx.embed(request, app, allow_split_groups=False)
    ctx.end_batch()
    assert ctx.batch_density == 1.0
    assert ctx.begin_batch(pairs) is not None
    ctx.end_batch()


def test_mark_done_requests_are_never_speculated():
    scenario = _scenario("QUICKG")
    ctx = _fresh_context(scenario)
    pairs = _greedy_pairs(scenario, limit=6)
    plan = ctx.begin_batch(pairs)
    assert plan is not None
    done_request, done_app = pairs[0]
    plan.mark_done(done_request)
    picked = plan.select_host(
        done_request, ctx.profiles.get(done_app)
    )
    assert picked is None
    assert plan.rows_used == 0
    ctx.end_batch()


def test_batched_embeds_match_reference_across_midrun_release():
    """A release inside the window bumps the rise counter, disarming the
    monotone-damage certificate — and every embed before and after must
    still equal the frozen scalar reference on a mirrored residual."""
    scenario = _scenario("QUICKG")
    substrate = scenario.substrate
    efficiency = scenario.efficiency
    ctx = _fresh_context(scenario, cache_mode="banded")
    ref_residual = ResidualState(substrate)
    pairs = _greedy_pairs(scenario, limit=40)

    plan = ctx.begin_batch(pairs)
    assert plan is not None
    rise_before = ctx.residual.link_rise_rev
    committed: list = []
    for position, (request, app) in enumerate(pairs):
        got = ctx.embed(request, app, allow_split_groups=False)
        expected = greedy_reference.greedy_embed(
            request, app, substrate, efficiency, ref_residual,
            allow_split_groups=False,
        )
        if expected is None:
            assert got is None
        else:
            embedding, loads = got
            assert embedding == expected
            ctx.residual.allocate(loads)
            ref_residual.allocate(
                compute_loads(
                    app, request.demand, expected, substrate, efficiency
                )
            )
            committed.append((loads, compute_loads(
                app, request.demand, expected, substrate, efficiency
            )))
        plan.mark_done(request)
        if position == len(pairs) // 2 and committed:
            # Mid-window release: the one residual mutation a batch
            # window is promised not to contain — the kernel must detect
            # it (rise counter) and keep falling back correctly.
            fast_loads, ref_loads = committed.pop(0)
            ctx.residual.release(fast_loads)
            ref_residual.release(ref_loads)
    assert ctx.residual.link_rise_rev > rise_before
    ctx.end_batch()
    assert np.array_equal(
        ctx.residual.link_array(), ref_residual.link_array()
    )
    assert np.array_equal(
        ctx.residual.node_array(), ref_residual.node_array()
    )


def test_rise_counter_tracks_only_rises():
    scenario = _scenario("QUICKG")
    ctx = _fresh_context(scenario)
    pairs = _greedy_pairs(scenario, limit=10)
    rev = ctx.residual.link_rise_rev
    for request, app in pairs:
        got = ctx.embed(request, app, allow_split_groups=False)
        if got is not None:
            _, loads = got
            ctx.residual.allocate(loads)
            # Allocations only lower residuals: no rise.
            assert ctx.residual.link_rise_rev == rev
            if loads.links:
                ctx.residual.release(loads)
                rev += 1
                assert ctx.residual.link_rise_rev == rev
                ctx.residual.allocate(loads)


# -- the bypass controller ----------------------------------------------------


class TestBypassController:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="cache_mode"):
            _BypassController("turbo", None)

    def test_pinned_banded_never_switches(self):
        controller = _BypassController("banded", payoff_scale=1.0)
        for _ in range(2 * _BypassController.PROBE):
            assert controller.use_bands()
            controller.observe(False)
        assert controller.mode == "banded"
        assert controller.switches == 0

    def test_pinned_direct_never_switches(self):
        controller = _BypassController("direct", payoff_scale=1e9)
        for _ in range(2 * _BypassController.HOLD):
            assert not controller.use_bands()
        assert controller.mode == "direct"
        assert controller.switches == 0

    def test_payoff_floor_calibrates_initial_mode(self):
        floor = _BypassController.PAYOFF_FLOOR
        assert _BypassController("adaptive", floor / 2).mode == "direct"
        assert _BypassController("adaptive", floor).mode == "banded"
        assert _BypassController("adaptive", None).mode == "banded"

    def test_probe_window_drops_to_direct_on_low_hit_rate(self):
        controller = _BypassController("adaptive", None)
        for _ in range(_BypassController.PROBE):
            assert controller.use_bands()
            controller.observe(False)
        assert controller.mode == "direct"
        assert controller.switches == 1

    def test_good_hit_rate_stays_banded(self):
        controller = _BypassController("adaptive", None)
        for _ in range(4 * _BypassController.PROBE):
            assert controller.use_bands()
            controller.observe(True)
        assert controller.mode == "banded"
        assert controller.switches == 0

    def test_hold_window_reprobes(self):
        controller = _BypassController("adaptive", None)
        for _ in range(_BypassController.PROBE):
            controller.use_bands()
            controller.observe(False)
        assert controller.mode == "direct"
        # The hold window: direct for HOLD lookups, then banded again.
        for _ in range(_BypassController.HOLD):
            assert not controller.use_bands()
        assert controller.mode == "banded"
        assert controller.switches == 2
        assert controller.use_bands()
