"""Behavioral tests for OLIVE (Algorithm 2) on a hand-built plan.

The scenario is small enough to verify every branch by hand: a 4-node line
substrate, one 2-VNF chain (node footprint 20/demand-unit, link footprint
5/demand-unit per virtual link), and a single-pattern plan guaranteeing 10
demand units of class (app 0, ingress edge-a) collocated on 'transport'.
"""

import pytest

from repro.apps.application import ROOT_ID
from repro.core.olive import OliveAlgorithm
from repro.errors import SimulationError
from repro.plan.pattern import ClassPlan, EmbeddingPattern, Plan
from repro.stats.aggregate import AggregateRequest
from repro.workload.request import Request
from tests.conftest import make_line_substrate, make_two_vnf_chain


def _plan_at_transport(demand: float = 10.0) -> Plan:
    aggregate = AggregateRequest(app_index=0, ingress="edge-a", demand=demand)
    pattern = EmbeddingPattern(
        node_map={ROOT_ID: "edge-a", 1: "transport", 2: "transport"},
        link_paths={(0, 1): (("edge-a", "transport"),), (1, 2): ()},
        weight=1.0,
    )
    return Plan(
        classes={
            aggregate.class_key: ClassPlan(
                aggregate=aggregate, patterns=[pattern], rejected_fraction=0.0
            )
        }
    )


def _request(rid: int, demand: float, ingress: str = "edge-a", arrival: int = 0):
    return Request(
        arrival=arrival, id=rid, app_index=0, ingress=ingress,
        demand=demand, duration=5,
    )


@pytest.fixture
def olive(chain_app):
    substrate = make_line_substrate(node_capacity=1000.0, link_capacity=2000.0)
    # Give transport extra room so the plan's 200-unit guarantee plus
    # borrowed load can coexist in the preemption tests.
    return OliveAlgorithm(substrate, [chain_app], _plan_at_transport())


class TestPlannedPath:
    def test_full_fit_is_planned(self, olive):
        decision = olive.process(_request(1, demand=4.0))
        assert decision.accepted and decision.planned
        assert not decision.borrowed and not decision.via_greedy
        assert decision.embedding.node_map[1] == "transport"
        # Plan residual dropped by the request's demand.
        assert olive.plan_residual.guaranteed_remaining(
            (0, "edge-a")
        ) == pytest.approx(6.0)

    def test_substrate_residual_updated(self, olive):
        olive.process(_request(1, demand=4.0))
        assert olive.residual.nodes["transport"] == pytest.approx(
            3000.0 - 80.0
        )
        assert olive.residual.links[("edge-a", "transport")] == pytest.approx(
            2000.0 - 20.0
        )

    def test_release_restores_both_residuals(self, olive):
        request = _request(1, demand=4.0)
        olive.process(request)
        olive.release(request)
        assert olive.residual.nodes["transport"] == pytest.approx(3000.0)
        assert olive.plan_residual.guaranteed_remaining(
            (0, "edge-a")
        ) == pytest.approx(10.0)

    def test_release_of_unknown_request_is_noop(self, olive):
        olive.release(_request(99, demand=1.0))  # never processed

    def test_double_process_raises(self, olive):
        request = _request(1, demand=1.0)
        olive.process(request)
        with pytest.raises(SimulationError, match="twice"):
            olive.process(request)


class TestBorrowedPath:
    def test_overflow_borrows_along_pattern(self, olive):
        olive.process(_request(1, demand=8.0))  # planned, residual 2 left
        decision = olive.process(_request(2, demand=5.0))  # > residual 2
        assert decision.accepted and decision.borrowed
        assert not decision.planned
        # Borrowed allocations follow the pattern's mapping...
        assert decision.embedding.node_map[1] == "transport"
        # ...but never draw down the plan residual.
        assert olive.plan_residual.guaranteed_remaining(
            (0, "edge-a")
        ) == pytest.approx(2.0)

    def test_unplanned_class_goes_greedy(self, olive):
        decision = olive.process(_request(3, demand=2.0, ingress="edge-b"))
        assert decision.accepted and decision.via_greedy
        assert not decision.planned and not decision.borrowed


class TestPreemption:
    def _fill_transport_with_borrowers(self, olive, count: int):
        """Force greedy allocations onto 'transport' and fill it."""
        olive.residual.nodes["core"] = 0.0
        olive.residual.nodes["edge-a"] = 0.0
        olive.residual.nodes["edge-b"] = 0.0
        for i in range(count):
            decision = olive.process(
                _request(100 + i, demand=10.0, ingress="edge-b")
            )
            assert decision.accepted and decision.via_greedy
        return olive

    def test_planned_request_preempts_borrowers(self, olive):
        # 15 greedy requests × 200 load fill transport (3000) completely.
        self._fill_transport_with_borrowers(olive, 15)
        assert olive.residual.nodes["transport"] == pytest.approx(0.0)
        decision = olive.process(_request(1, demand=4.0))
        assert decision.accepted and decision.planned
        assert len(decision.preempted) == 1
        preempted_id = decision.preempted[0].id
        assert preempted_id not in olive.active
        # The preempted borrower's capacity was recycled: 200 freed, 80 used.
        assert olive.residual.nodes["transport"] == pytest.approx(120.0)

    def test_preemption_disabled_falls_to_rejection(self, chain_app):
        substrate = make_line_substrate(node_capacity=1000.0, link_capacity=2000.0)
        olive = OliveAlgorithm(
            substrate, [chain_app], _plan_at_transport(),
            enable_preemption=False,
        )
        TestPreemption._fill_transport_with_borrowers(self, olive, 15)
        decision = olive.process(_request(1, demand=4.0))
        # Without preemption the planned embedding is dropped; greedy finds
        # no capacity anywhere (everything zeroed or full) → reject.
        assert not decision.accepted
        assert decision.preempted == ()

    def test_planned_allocations_are_never_preempted(self, olive):
        planned = olive.process(_request(1, demand=10.0))  # full guarantee
        assert planned.planned
        self._fill_transport_with_borrowers(olive, 14)  # 2800 of 2800 left
        # A new planned request cannot fit its pattern (residual 0) and
        # borrows; nothing should ever preempt request 1.
        decision = olive.process(_request(2, demand=4.0))
        assert 1 in olive.active
        if decision.preempted:
            assert all(r.id != 1 for r in decision.preempted)

    def test_insufficient_preemptable_capacity_rejects(self, chain_app):
        substrate = make_line_substrate(node_capacity=1000.0, link_capacity=2000.0)
        olive = OliveAlgorithm(substrate, [chain_app], _plan_at_transport(demand=200.0))
        # One greedy borrower (200 load), then zero out the rest of
        # transport so even preempting it cannot cover a 220-unit shortfall.
        olive.residual.nodes["core"] = 0.0
        olive.residual.nodes["edge-a"] = 0.0
        olive.residual.nodes["edge-b"] = 0.0
        borrowed = olive.process(_request(50, demand=10.0, ingress="edge-b"))
        assert borrowed.accepted
        olive.residual.nodes["transport"] = 50.0
        # Needs 300 on transport; 50 residual + 200 preemptable < 300.
        decision = olive.process(_request(1, demand=15.0))
        assert not decision.accepted
        # The borrower survives a failed preemption attempt.
        assert 50 in olive.active


class TestIntrospection:
    def test_active_demand_and_cost_track_allocations(self, olive):
        olive.process(_request(1, demand=4.0))
        olive.process(_request(2, demand=2.0))
        assert olive.active_demand() == pytest.approx(6.0)
        # Planned pattern: 20 load/unit on transport (cost 10) + 5 load/unit
        # on one link (cost 1) → 205/unit.
        assert olive.active_cost_per_slot() == pytest.approx(6 * 205.0)

    def test_quickg_name_for_empty_plan(self, chain_app):
        substrate = make_line_substrate()
        algorithm = OliveAlgorithm(substrate, [chain_app], Plan())
        assert algorithm.name == "QUICKG"
        named = OliveAlgorithm(substrate, [chain_app], Plan(), name="X")
        assert named.name == "X"
