"""Metamorphic properties of the simulator and the event subsystem.

Without ground truth for chaos scenarios, we test *relations between
runs* that must hold whatever the absolute numbers are:

* growing every capacity can never increase the rejection count (more
  room, same workload, same greedy rule);
* an empty event schedule is bit-identical to running with no schedule;
* a failure undone within the same slot is invisible (events of one slot
  apply atomically before stranding is resolved);
* after any failure/recovery churn, the capacity invariant
  ``residual + Σ active loads == effective capacity`` holds exactly.

Hypothesis drives the parameter choices; the ``ci`` profile in
``conftest.py`` derandomizes them, so CI replays the identical examples
every run.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.quickg import make_quickg
from repro.core.olive import OliveAlgorithm
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import Scenario, build_scenario
from repro.scenarios.events import (
    EventSchedule,
    LinkFailure,
    LinkRecovery,
    NodeDrain,
    NodeRestore,
    capacity_invariant_gap,
)
from repro.sim.engine import SimulationResult, simulate
from tests.test_fastpath_equivalence import assert_results_identical

#: Scenario construction dominates example cost; scenarios are immutable
#: for our purposes (algorithms keep their own residual state), so one
#: cache serves every hypothesis example.
_SCENARIOS: dict[tuple, Scenario] = {}


def _scenario(utilization: float, seed: int, with_plan: bool = False) -> Scenario:
    key = (utilization, seed, with_plan)
    if key not in _SCENARIOS:
        _SCENARIOS[key] = build_scenario(
            ExperimentConfig.test(utilization=utilization),
            seed,
            with_plan=with_plan,
        )
    return _SCENARIOS[key]


def _not_served(result: SimulationResult) -> int:
    return (
        sum(1 for d in result.decisions if not d.accepted)
        + len(result.preemptions)
    )


class TestCapacityMonotonicity:
    @settings(max_examples=12)
    @given(
        utilization=st.sampled_from([0.8, 1.2, 1.6, 2.0]),
        seed=st.integers(min_value=0, max_value=7),
        factor=st.sampled_from([1.25, 1.5, 2.0, 4.0]),
    )
    def test_scaling_all_capacities_up_never_increases_rejections(
        self, utilization, seed, factor
    ):
        scenario = _scenario(utilization, seed)
        online = scenario.online_requests()
        slots = scenario.config.online_slots

        base = simulate(
            make_quickg(scenario.substrate, scenario.apps, scenario.efficiency),
            online, slots,
        )
        scaled = simulate(
            make_quickg(
                scenario.substrate.scaled_capacities(factor),
                scenario.apps, scenario.efficiency,
            ),
            online, slots,
        )
        assert _not_served(scaled) <= _not_served(base)


class TestEmptyScheduleIdentity:
    @settings(max_examples=6)
    @given(
        utilization=st.sampled_from([1.0, 1.4]),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_empty_schedule_is_bit_identical_to_no_events(
        self, utilization, seed
    ):
        scenario = _scenario(utilization, seed, with_plan=True)
        online = scenario.online_requests()
        slots = scenario.config.online_slots

        def olive():
            return OliveAlgorithm(
                scenario.substrate, scenario.apps, scenario.plan,
                efficiency=scenario.efficiency,
            )

        plain = simulate(olive(), online, slots)
        empty = simulate(olive(), online, slots, events=EventSchedule([]))
        assert_results_identical(empty, plain)
        assert empty.num_events == 0
        assert empty.disruptions == []


class TestSameSlotRecovery:
    @settings(max_examples=8)
    @given(
        utilization=st.sampled_from([1.2, 1.6]),
        seed=st.integers(min_value=0, max_value=3),
        slot_fraction=st.sampled_from([0.25, 0.5, 0.75]),
        element=st.integers(min_value=0, max_value=31),
    )
    def test_failure_and_recovery_within_one_slot_is_invisible(
        self, utilization, seed, slot_fraction, element
    ):
        """All events of a slot apply atomically before stranding is
        resolved, so fail+recover in one slot must not disrupt anything —
        and the run must be bit-identical to an undisturbed one."""
        scenario = _scenario(utilization, seed)
        online = scenario.online_requests()
        slots = scenario.config.online_slots
        slot = max(1, int(slots * slot_fraction))
        links = list(scenario.substrate.links)
        nodes = list(scenario.substrate.nodes)
        link = links[element % len(links)]
        node = nodes[element % len(nodes)]
        schedule = EventSchedule(
            [
                LinkFailure(slot=slot, link=link),
                NodeDrain(slot=slot, node=node, fraction=0.0),
                LinkRecovery(slot=slot, link=link),
                NodeRestore(slot=slot, node=node),
            ],
            policy="preempt",
        )

        def quickg():
            return make_quickg(
                scenario.substrate, scenario.apps, scenario.efficiency
            )

        plain = simulate(quickg(), online, slots)
        churned_algorithm = quickg()
        churned = simulate(churned_algorithm, online, slots, events=schedule)
        assert churned.disruptions == []
        assert_results_identical(churned, plain)
        # The capacity invariant holds exactly at the end of the run:
        # residual + active loads == effective capacity (== nominal, since
        # every cut was undone).
        assert capacity_invariant_gap(churned_algorithm) == pytest.approx(
            0.0, abs=1e-6
        )


class TestCapacityInvariantUnderChurn:
    @settings(max_examples=8)
    @given(
        seed=st.integers(min_value=0, max_value=3),
        policy=st.sampled_from(["preempt", "reroute"]),
        picks=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=22),  # failure slot
                st.integers(min_value=0, max_value=31),  # element index
                st.integers(min_value=1, max_value=6),   # downtime slots
            ),
            min_size=1,
            max_size=4,
        ),
    )
    def test_residuals_obey_capacity_invariant_after_any_churn(
        self, seed, policy, picks
    ):
        scenario = _scenario(1.6, seed)
        online = scenario.online_requests()
        slots = scenario.config.online_slots
        links = list(scenario.substrate.links)
        events = []
        for slot, element, downtime in picks:
            link = links[element % len(links)]
            events.append(LinkFailure(slot=slot, link=link))
            events.append(
                LinkRecovery(slot=min(slot + downtime, slots - 1), link=link)
            )
        schedule = EventSchedule(events, policy=policy)
        algorithm = make_quickg(
            scenario.substrate, scenario.apps, scenario.efficiency
        )
        result = simulate(algorithm, online, slots, events=schedule)
        assert capacity_invariant_gap(algorithm) == pytest.approx(
            0.0, abs=1e-6
        )
        # Every recovery happened, so effective capacity is nominal again.
        index = algorithm.residual.index
        assert algorithm.residual.link_capacity == index.link_capacity.tolist()
        # Disruption bookkeeping is consistent.
        assert result.disrupted_ids <= result.preempted_ids
