"""Unit tests for repro.plan: the PLAN-VNE LP, decomposition, and plans."""

import numpy as np
import pytest

from repro.apps.application import ROOT_ID
from repro.apps.efficiency import UniformEfficiency
from repro.errors import PlanError
from repro.lp.solver import solve_lp
from repro.plan.api import compute_plan, empty_plan
from repro.plan.decompose import decompose_class
from repro.plan.formulation import PlanVNEConfig, build_plan_vne
from repro.plan.pattern import ClassPlan, EmbeddingPattern, Plan
from repro.plan.rejection import rejection_factor
from repro.stats.aggregate import AggregateRequest
from tests.conftest import make_line_substrate, make_two_vnf_chain


@pytest.fixture
def small_instance(line_substrate, chain_app):
    aggregates = [AggregateRequest(app_index=0, ingress="edge-a", demand=10.0)]
    return line_substrate, [chain_app], aggregates


class TestFormulation:
    def test_root_variable_only_at_ingress(self, small_instance):
        substrate, apps, aggregates = small_instance
        model = build_plan_vne(substrate, apps, aggregates)
        root_vars = [
            key for key in model.node_vars if key[1] == ROOT_ID
        ]
        assert root_vars == [(0, ROOT_ID, "edge-a")]

    def test_quantile_bounds_are_one_over_p(self, small_instance):
        substrate, apps, aggregates = small_instance
        config = PlanVNEConfig(num_quantiles=4)
        model = build_plan_vne(substrate, apps, aggregates, config=config)
        compiled = model.program.compile()
        for (_c, _p), var in model.quantile_vars.items():
            assert compiled.upper[var] == pytest.approx(0.25)

    def test_quantile_rejection_cost_increases_with_p(self, small_instance):
        substrate, apps, aggregates = small_instance
        model = build_plan_vne(substrate, apps, aggregates)
        costs = [
            model.program.objective_coefficient(model.quantile_vars[(0, p)])
            for p in range(1, 11)
        ]
        assert all(b > a for a, b in zip(costs, costs[1:]))
        # Cost of quantile p is exactly p times the base (quantile-1) cost.
        assert costs[4] == pytest.approx(5 * costs[0])

    def test_arc_variables_cover_both_directions(self, small_instance):
        substrate, apps, aggregates = small_instance
        model = build_plan_vne(substrate, apps, aggregates)
        arcs = {arc for (c, vl, arc) in model.arc_vars if vl == (0, 1)}
        assert ("edge-a", "transport") in arcs
        assert ("transport", "edge-a") in arcs
        assert len(arcs) == 2 * substrate.num_links

    def test_full_allocation_when_capacity_ample(self, small_instance):
        substrate, apps, aggregates = small_instance
        model = build_plan_vne(substrate, apps, aggregates)
        solution = solve_lp(model.program)
        root = model.node_vars[(0, ROOT_ID, "edge-a")]
        assert solution.values[root] == pytest.approx(1.0)

    def test_rejection_when_capacity_tight(self, chain_app):
        # Node footprint per unit demand is 20; edge-a capacity 1000 and all
        # other placements are behind a link of capacity 30 (link footprint
        # per unit demand is 5), so at most 6 demand units can leave edge-a.
        substrate = make_line_substrate(node_capacity=1000.0, link_capacity=30.0)
        aggregates = [
            AggregateRequest(app_index=0, ingress="edge-a", demand=100.0)
        ]
        model = build_plan_vne(substrate, [chain_app], aggregates)
        solution = solve_lp(model.program)
        root = model.node_vars[(0, ROOT_ID, "edge-a")]
        allocated = solution.values[root]
        # edge-a alone hosts 1000 / 20 = 50 units; the link adds ≤ 6 more.
        assert allocated < 0.6
        assert allocated > 0.45

    def test_unknown_ingress_raises(self, line_substrate, chain_app):
        aggregates = [AggregateRequest(app_index=0, ingress="nope", demand=1.0)]
        with pytest.raises(PlanError, match="unknown ingress"):
            build_plan_vne(line_substrate, [chain_app], aggregates)

    def test_config_rejects_zero_quantiles(self):
        with pytest.raises(PlanError):
            PlanVNEConfig(num_quantiles=0)


class TestRejectionFactor:
    def test_formula(self, line_substrate, chain_app):
        psi = rejection_factor(chain_app, line_substrate, path_hops=3)
        # node part: 20 × 50 (max node cost); link part: 10 × 1 × 3.
        assert psi == pytest.approx(20 * 50.0 + 10 * 1.0 * 3)

    def test_more_hops_cost_more(self, line_substrate, chain_app):
        assert rejection_factor(
            chain_app, line_substrate, path_hops=5
        ) > rejection_factor(chain_app, line_substrate, path_hops=1)


class TestDecompose:
    def test_collocated_solution_single_pattern(self, chain_app):
        node_mass = {
            ROOT_ID: {"edge-a": 1.0},
            1: {"edge-a": 1.0},
            2: {"edge-a": 1.0},
        }
        arc_flow = {(0, 1): {}, (1, 2): {}}
        patterns, lost = decompose_class(
            chain_app, "edge-a", node_mass, arc_flow
        )
        assert lost == pytest.approx(0.0, abs=1e-9)
        assert len(patterns) == 1
        assert patterns[0].weight == pytest.approx(1.0)
        assert patterns[0].node_map == {0: "edge-a", 1: "edge-a", 2: "edge-a"}
        assert patterns[0].link_paths[(0, 1)] == ()

    def test_split_solution_two_patterns(self, chain_app):
        # Half stays at edge-a, half goes v1,v2 → transport.
        node_mass = {
            ROOT_ID: {"edge-a": 1.0},
            1: {"edge-a": 0.5, "transport": 0.5},
            2: {"edge-a": 0.5, "transport": 0.5},
        }
        arc_flow = {
            (0, 1): {("edge-a", "transport"): 0.5},
            (1, 2): {},
        }
        patterns, lost = decompose_class(
            chain_app, "edge-a", node_mass, arc_flow
        )
        assert lost == pytest.approx(0.0, abs=1e-9)
        assert len(patterns) == 2
        weights = sorted(p.weight for p in patterns)
        assert weights == pytest.approx([0.5, 0.5])
        hosts = {p.node_map[1] for p in patterns}
        assert hosts == {"edge-a", "transport"}

    def test_partial_allocation_reflected_in_weights(self, chain_app):
        node_mass = {
            ROOT_ID: {"edge-a": 0.7},
            1: {"edge-a": 0.7},
            2: {"edge-a": 0.7},
        }
        arc_flow = {(0, 1): {}, (1, 2): {}}
        patterns, lost = decompose_class(
            chain_app, "edge-a", node_mass, arc_flow
        )
        assert sum(p.weight for p in patterns) == pytest.approx(0.7)

    def test_cycle_in_flow_is_cancelled(self, chain_app):
        # A spurious transport→core→transport cycle rides on a valid flow.
        node_mass = {
            ROOT_ID: {"edge-a": 1.0},
            1: {"transport": 1.0},
            2: {"transport": 1.0},
        }
        arc_flow = {
            (0, 1): {
                ("edge-a", "transport"): 1.0,
                ("transport", "core"): 0.3,
                ("core", "transport"): 0.3,
            },
            (1, 2): {},
        }
        patterns, lost = decompose_class(
            chain_app, "edge-a", node_mass, arc_flow
        )
        assert sum(p.weight for p in patterns) == pytest.approx(1.0)
        # The cycle must not appear in any pattern path.
        for pattern in patterns:
            assert len(pattern.link_paths[(0, 1)]) == 1

    def test_dead_end_reports_lost_mass(self, chain_app):
        # Flow leads to core but v1 has no mass anywhere reachable.
        node_mass = {
            ROOT_ID: {"edge-a": 1.0},
            1: {},
            2: {},
        }
        arc_flow = {(0, 1): {}, (1, 2): {}}
        patterns, lost = decompose_class(
            chain_app, "edge-a", node_mass, arc_flow
        )
        assert patterns == []
        assert lost == pytest.approx(1.0)


class TestPatternStructures:
    def test_pattern_weight_positive(self):
        with pytest.raises(PlanError):
            EmbeddingPattern(node_map={}, link_paths={}, weight=0.0)

    def test_planned_capacity(self):
        pattern = EmbeddingPattern(node_map={}, link_paths={}, weight=0.25)
        assert pattern.planned_capacity(40.0) == pytest.approx(10.0)

    def test_class_plan_accounting(self):
        aggregate = AggregateRequest(app_index=0, ingress="a", demand=40.0)
        plan = ClassPlan(
            aggregate=aggregate,
            patterns=[
                EmbeddingPattern(node_map={}, link_paths={}, weight=0.5),
                EmbeddingPattern(node_map={}, link_paths={}, weight=0.25),
            ],
            rejected_fraction=0.25,
        )
        assert plan.allocated_fraction == pytest.approx(0.75)
        assert plan.guaranteed_demand() == pytest.approx(30.0)

    def test_empty_plan_properties(self):
        plan = empty_plan()
        assert plan.is_empty
        assert plan.num_patterns == 0
        assert plan.total_guaranteed_demand() == 0.0
        assert plan.mean_rejected_fraction() == 0.0
        assert plan.class_plan((0, "a")) is None


class TestComputePlan:
    def test_empty_aggregates_give_empty_plan(self, line_substrate, chain_app):
        assert compute_plan(line_substrate, [chain_app], []).is_empty

    def test_patterns_respect_capacity(self, chain_app):
        """Plan loads, fully deployed, must fit within substrate capacity."""
        substrate = make_line_substrate(node_capacity=500.0, link_capacity=100.0)
        aggregates = [
            AggregateRequest(app_index=0, ingress="edge-a", demand=60.0),
            AggregateRequest(app_index=0, ingress="edge-b", demand=60.0),
        ]
        plan = compute_plan(substrate, [chain_app], aggregates)
        efficiency = UniformEfficiency()
        node_load = {v: 0.0 for v in substrate.nodes}
        link_load = {l: 0.0 for l in substrate.links}
        for class_plan in plan.classes.values():
            demand = class_plan.aggregate.demand
            for pattern in class_plan.patterns:
                scale = pattern.weight * demand
                for vnf in chain_app.non_root_vnfs():
                    node_load[pattern.node_map[vnf.id]] += scale * vnf.size
                for vlink in chain_app.links:
                    for link in pattern.link_paths[vlink.key]:
                        link_load[link] += scale * vlink.size
        for v, load in node_load.items():
            assert load <= substrate.node_capacity(v) * (1 + 1e-6)
        for l, load in link_load.items():
            assert load <= substrate.link_capacity(l) * (1 + 1e-6)

    def test_quantiles_balance_rejections(self, chain_app):
        """With quantiles, competing classes share the shortage."""
        substrate = make_line_substrate(node_capacity=400.0, link_capacity=50.0)
        aggregates = [
            AggregateRequest(app_index=0, ingress="edge-a", demand=50.0),
            AggregateRequest(app_index=0, ingress="edge-b", demand=50.0),
        ]
        plan = compute_plan(
            substrate, [chain_app], aggregates,
            config=PlanVNEConfig(num_quantiles=10),
        )
        fractions = [
            plan.classes[key].rejected_fraction
            for key in sorted(plan.classes)
        ]
        assert len(fractions) == 2
        # Symmetric instance → both classes rejected roughly equally.
        assert abs(fractions[0] - fractions[1]) < 0.15
        assert all(f > 0.1 for f in fractions)

    def test_single_quantile_allows_starvation(self, chain_app):
        """P=1 prices all rejected traffic identically → unbalanced plans."""
        substrate = make_line_substrate(node_capacity=400.0, link_capacity=50.0)
        aggregates = [
            AggregateRequest(app_index=0, ingress="edge-a", demand=50.0),
            AggregateRequest(app_index=0, ingress="edge-b", demand=50.0),
        ]
        plan_p1 = compute_plan(
            substrate, [chain_app], aggregates,
            config=PlanVNEConfig(num_quantiles=1),
        )
        plan_p10 = compute_plan(
            substrate, [chain_app], aggregates,
            config=PlanVNEConfig(num_quantiles=10),
        )

        def spread(plan: Plan) -> float:
            fractions = [c.rejected_fraction for c in plan.classes.values()]
            return max(fractions) - min(fractions) if fractions else 0.0

        # The quantile LP may break ties either way at P=1; what must hold
        # is that P=10 is at least as balanced as P=1.
        assert spread(plan_p10) <= spread(plan_p1) + 1e-6
