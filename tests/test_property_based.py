"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.application import ROOT_ID, VNF, Application, VirtualLink, VNFKind
from repro.core.embedding import ElementLoads
from repro.core.residual import ResidualState
from repro.errors import InfeasibleError, LPError
from repro.lp.model import ConstraintSense, LinearProgram
from repro.lp.solver import solve_lp
from repro.plan.decompose import decompose_class
from repro.stats.aggregate import class_demand_series
from repro.stats.bootstrap import bootstrap_percentile
from repro.utils.rng import make_rng
from repro.workload.popularity import zipf_weights
from repro.workload.request import Request
from tests.conftest import make_line_substrate


# -- LP layer -----------------------------------------------------------------


@st.composite
def small_lps(draw):
    """Random bounded LPs with ≤ 4 variables and ≤ 4 constraints."""
    num_vars = draw(st.integers(1, 4))
    objective = [
        draw(st.floats(-5, 5, allow_nan=False)) for _ in range(num_vars)
    ]
    upper = [draw(st.floats(0.5, 10, allow_nan=False)) for _ in range(num_vars)]
    rows = []
    for _ in range(draw(st.integers(0, 4))):
        coeffs = {
            v: draw(st.floats(-3, 3, allow_nan=False))
            for v in range(num_vars)
        }
        sense = draw(st.sampled_from(list(ConstraintSense)))
        rhs = draw(st.floats(-10, 10, allow_nan=False))
        rows.append((coeffs, sense, rhs))
    return objective, upper, rows


@given(small_lps())
@settings(max_examples=60, deadline=None)
def test_lp_solutions_are_feasible(problem):
    """Whatever HiGHS returns must satisfy every constraint and bound."""
    objective, upper, rows = problem
    lp = LinearProgram()
    variables = [
        lp.add_variable(upper=upper[i], objective=objective[i])
        for i in range(len(objective))
    ]
    for coeffs, sense, rhs in rows:
        lp.add_constraint(
            {variables[v]: c for v, c in coeffs.items()}, sense, rhs
        )
    try:
        solution = solve_lp(lp)
    except (InfeasibleError, LPError):
        return  # infeasibility is a legitimate outcome
    tol = 1e-6
    for i, variable in enumerate(variables):
        value = solution.values[variable]
        assert -tol <= value <= upper[i] + tol
    for coeffs, sense, rhs in rows:
        lhs = sum(c * solution.values[variables[v]] for v, c in coeffs.items())
        if sense is ConstraintSense.LE:
            assert lhs <= rhs + 1e-5
        elif sense is ConstraintSense.GE:
            assert lhs >= rhs - 1e-5
        else:
            assert lhs == pytest.approx(rhs, abs=1e-5)


# -- flow decomposition: decompose(compose(patterns)) == patterns --------------


@st.composite
def chain_patterns(draw):
    """Random weighted embeddings of a 2-VNF chain on the line substrate."""
    nodes = ["edge-a", "transport", "core", "edge-b"]
    # Simple path structure of the line substrate.
    paths = {
        ("edge-a", "edge-a"): [],
        ("edge-a", "transport"): [("edge-a", "transport")],
        ("edge-a", "core"): [("edge-a", "transport"), ("core", "transport")],
        ("edge-a", "edge-b"): [
            ("edge-a", "transport"),
            ("core", "transport"),
            ("core", "edge-b"),
        ],
    }
    count = draw(st.integers(1, 3))
    picks = draw(
        st.lists(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    weights = draw(
        st.lists(
            st.floats(0.05, 1.0, allow_nan=False),
            min_size=count,
            max_size=count,
        )
    )
    total = sum(weights)
    if total > 1.0:
        weights = [w / total for w in weights]
    return picks, weights, paths


def _line_path(paths, a, b):
    """Directed path between any two line-substrate nodes, in walk order."""
    if a == b:
        return []
    order = {"edge-a": 0, "transport": 1, "core": 2, "edge-b": 3}
    lo, hi = sorted((a, b), key=order.get)
    full = paths[("edge-a", "edge-b")]
    segment = full[order[lo]:order[hi]]
    return segment if a == lo else list(reversed(segment))


@given(chain_patterns())
@settings(max_examples=60, deadline=None)
def test_decomposition_recovers_composed_flow(case):
    """Composing random patterns into masses/flows then decomposing must
    recover the total allocated fraction with consistent patterns."""
    picks, weights, paths = case
    app = Application(
        name="chain",
        vnfs=(VNF(ROOT_ID, 0.0, VNFKind.ROOT), VNF(1, 1.0), VNF(2, 1.0)),
        links=(VirtualLink(ROOT_ID, 1, 1.0), VirtualLink(1, 2, 1.0)),
    )
    node_mass = {ROOT_ID: {"edge-a": sum(weights)}, 1: {}, 2: {}}
    arc_flow = {(0, 1): {}, (1, 2): {}}
    for (host1, host2), weight in zip(picks, weights):
        node_mass[1][host1] = node_mass[1].get(host1, 0.0) + weight
        node_mass[2][host2] = node_mass[2].get(host2, 0.0) + weight
        for key, (a, b) in (((0, 1), ("edge-a", host1)), ((1, 2), (host1, host2))):
            node = a
            for link in _line_path(paths, a, b):
                u, v = link
                arc = (node, v) if node == u else (node, u)
                arc_flow[key][arc] = arc_flow[key].get(arc, 0.0) + weight
                node = arc[1]

    patterns, lost = decompose_class(
        app, "edge-a", node_mass, arc_flow, tolerance=1e-9
    )
    assert lost == pytest.approx(0.0, abs=1e-7)
    assert sum(p.weight for p in patterns) == pytest.approx(
        sum(weights), abs=1e-7
    )
    # Every recovered pattern's path must connect its own node mapping.
    for pattern in patterns:
        for vlink in app.links:
            node = pattern.node_map[vlink.tail]
            for link in pattern.link_paths[vlink.key]:
                a, b = link
                node = b if node == a else a
            assert node == pattern.node_map[vlink.head]


# -- residual state bookkeeping -------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["edge-a", "transport", "core", "edge-b"]),
            st.floats(0.1, 50.0, allow_nan=False),
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_residual_allocate_release_is_exact(operations):
    substrate = make_line_substrate(node_capacity=10_000.0)
    residual = ResidualState(substrate)
    loads = [
        ElementLoads(nodes={node: amount}) for node, amount in operations
    ]
    for load in loads:
        residual.allocate(load)
    for load in loads:
        residual.release(load)
    for node, attrs in substrate.nodes.items():
        assert residual.nodes[node] == pytest.approx(attrs.capacity)


# -- workload statistics ---------------------------------------------------------


@given(st.integers(1, 200), st.floats(0.2, 4.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_zipf_weights_are_a_distribution(count, alpha):
    weights = zipf_weights(count, alpha)
    assert weights.sum() == pytest.approx(1.0)
    assert (np.diff(weights) <= 1e-12).all()


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(1, 10), st.floats(0.1, 5)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_demand_series_mass_conservation(raw):
    """Σ_t d(r̃, t) equals Σ_r d(r)·(active slots within horizon)."""
    horizon = 25
    requests = [
        Request(
            arrival=arrival, id=i, app_index=0, ingress="a",
            demand=demand, duration=duration,
        )
        for i, (arrival, duration, demand) in enumerate(raw)
    ]
    series = class_demand_series(requests, horizon)
    total = sum(s.sum() for s in series.values())
    expected = sum(
        r.demand * max(0, min(r.departure, horizon) - min(r.arrival, horizon))
        for r in requests
    )
    assert total == pytest.approx(expected)


@given(
    st.lists(st.floats(0.0, 1000.0, allow_nan=False), min_size=2, max_size=200),
    st.floats(1.0, 99.0, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_bootstrap_percentile_within_sample_range(values, alpha):
    series = np.asarray(values)
    estimate = bootstrap_percentile(series, alpha=alpha, rng=make_rng(0))
    assert series.min() - 1e-9 <= estimate.estimate <= series.max() + 1e-9
    assert estimate.ci_low <= estimate.estimate <= estimate.ci_high
