"""Unit tests for the baselines: QUICKG, FULLG, SLOTOFF."""

import itertools

import pytest

from repro.apps.efficiency import UniformEfficiency
from repro.baselines.fullg import FullGAlgorithm, exact_embed
from repro.baselines.quickg import make_quickg
from repro.baselines.slotoff import SlotOffAlgorithm
from repro.core.embedding import Embedding, compute_loads
from repro.core.residual import ResidualState
from repro.plan.formulation import PlanVNEConfig
from repro.utils.paths import capacity_constrained_dijkstra, path_links
from repro.workload.request import Request
from tests.conftest import make_line_substrate, make_two_vnf_chain


def _request(rid=1, demand=1.0, ingress="edge-a", arrival=0, duration=5, app=0):
    return Request(
        arrival=arrival, id=rid, app_index=app, ingress=ingress,
        demand=demand, duration=duration,
    )


class TestQuickG:
    def test_has_no_plan_and_no_preemption(self, line_substrate, chain_app):
        quickg = make_quickg(line_substrate, [chain_app])
        assert quickg.name == "QUICKG"
        assert quickg.plan.is_empty
        assert not quickg.enable_preemption
        assert not quickg.allow_split_greedy

    def test_every_acceptance_is_greedy(self, line_substrate, chain_app):
        quickg = make_quickg(line_substrate, [chain_app])
        decision = quickg.process(_request())
        assert decision.accepted and decision.via_greedy
        assert not decision.planned and not decision.borrowed


def _brute_force_min_cost(request, app, substrate, residual):
    """Enumerate all node placements with per-link shortest paths."""
    efficiency = UniformEfficiency()
    nodes = list(substrate.nodes)
    best = None
    for placement in itertools.product(nodes, repeat=app.num_vnfs):
        node_map = {0: request.ingress}
        node_map.update({i + 1: placement[i] for i in range(app.num_vnfs)})
        link_paths = {}
        ok = True
        for vlink in app.links:
            load = request.demand * vlink.size
            dist, parent = capacity_constrained_dijkstra(
                substrate.adjacency,
                node_map[vlink.tail],
                lambda l, load=load: load * substrate.link_cost(l),
                lambda l, load=load: residual.links[l] >= load,
            )
            if node_map[vlink.head] not in dist:
                ok = False
                break
            link_paths[vlink.key] = tuple(
                path_links(parent, node_map[vlink.tail], node_map[vlink.head])
            )
        if not ok:
            continue
        embedding = Embedding(node_map=node_map, link_paths=link_paths)
        try:
            loads = compute_loads(
                app, request.demand, embedding, substrate, efficiency
            )
        except Exception:
            continue
        if not residual.fits(loads):
            continue
        cost = loads.cost_per_slot(substrate)
        if best is None or cost < best[0]:
            best = (cost, embedding)
    return best


class TestFullG:
    def test_matches_brute_force_on_empty_substrate(self, line_substrate, chain_app):
        residual = ResidualState(line_substrate)
        request = _request(demand=2.0)
        embedding = exact_embed(
            request, chain_app, line_substrate, UniformEfficiency(), residual
        )
        assert embedding is not None
        loads = compute_loads(
            chain_app, 2.0, embedding, line_substrate, UniformEfficiency()
        )
        expected = _brute_force_min_cost(
            request, chain_app, line_substrate, residual
        )
        assert loads.cost_per_slot(line_substrate) == pytest.approx(
            expected[0]
        )

    def test_matches_brute_force_under_partial_load(self, chain_app):
        substrate = make_line_substrate(node_capacity=200.0, link_capacity=50.0)
        residual = ResidualState(substrate)
        residual.nodes["core"] = 15.0  # cheapest node nearly full
        residual.links[("core", "transport")] = 4.0  # and hard to reach
        request = _request(demand=1.0)
        embedding = exact_embed(
            request, chain_app, substrate, UniformEfficiency(), residual
        )
        expected = _brute_force_min_cost(request, chain_app, substrate, residual)
        assert (embedding is None) == (expected is None)
        if embedding is not None:
            loads = compute_loads(
                chain_app, 1.0, embedding, substrate, UniformEfficiency()
            )
            assert loads.cost_per_slot(substrate) == pytest.approx(expected[0])

    def test_rejects_when_no_capacity(self, line_substrate, chain_app):
        residual = ResidualState(line_substrate)
        for node in residual.nodes:
            residual.nodes[node] = 0.5
        assert (
            exact_embed(
                _request(), chain_app, line_substrate, UniformEfficiency(),
                residual,
            )
            is None
        )

    def test_algorithm_interface_roundtrip(self, line_substrate, chain_app):
        fullg = FullGAlgorithm(line_substrate, [chain_app])
        request = _request(demand=3.0)
        decision = fullg.process(request)
        assert decision.accepted
        assert fullg.active_demand() == pytest.approx(3.0)
        before = dict(fullg.residual.nodes)
        fullg.release(request)
        assert fullg.active_demand() == 0.0
        assert fullg.residual.nodes != before  # capacity restored

    def test_spreads_when_capacity_forces_it(self):
        """A VNF too big for the cheap node lands elsewhere; the rest stay."""
        from repro.apps.application import ROOT_ID, Application, VNF, VNFKind, VirtualLink

        app = Application(
            name="uneven-chain",
            vnfs=(
                VNF(ROOT_ID, 0.0, VNFKind.ROOT),
                VNF(1, 10.0),
                VNF(2, 30.0),
            ),
            links=(VirtualLink(0, 1, 5.0), VirtualLink(1, 2, 5.0)),
        )
        substrate = make_line_substrate(node_capacity=500.0, link_capacity=500.0)
        residual = ResidualState(substrate)
        residual.nodes["core"] = 25.0  # fits v1 (10) but not v2 (30)
        request = _request(demand=1.0)
        embedding = exact_embed(
            request, app, substrate, UniformEfficiency(), residual
        )
        assert embedding is not None
        assert embedding.node_map[1] == "core"
        assert embedding.node_map[2] == "transport"

    def test_joint_capacity_limitation_is_conservative(self, chain_app):
        """Documented DP approximation: per-element pricing can pick a
        mapping whose joint load overshoots one element; the post-check
        then rejects rather than accept an infeasible embedding."""
        substrate = make_line_substrate(node_capacity=500.0, link_capacity=500.0)
        residual = ResidualState(substrate)
        # Every node fits one VNF (20 each at demand 2 → 40 jointly) but
        # none fits both; the DP collocates on the cheapest and the exact
        # feasibility check refuses. Conservative: reject, never violate.
        for node in residual.nodes:
            residual.nodes[node] = 25.0
        request = _request(demand=2.0)
        embedding = exact_embed(
            request, chain_app, substrate, UniformEfficiency(), residual
        )
        assert embedding is None


class TestSlotOff:
    def test_accepts_everything_when_capacity_ample(self, line_substrate, chain_app):
        slotoff = SlotOffAlgorithm(line_substrate, [chain_app])
        arrivals = [_request(rid=i, demand=1.0) for i in range(5)]
        result = slotoff.run_slot(0, arrivals)
        assert all(d.accepted for d in result.decisions)
        assert slotoff.active_demand() == pytest.approx(5.0)
        assert result.resource_cost > 0

    def test_rejects_overload_and_never_reconsiders(self, chain_app):
        substrate = make_line_substrate(node_capacity=100.0, link_capacity=10.0)
        slotoff = SlotOffAlgorithm(substrate, [chain_app])
        # Node footprint 20/unit: capacity fits ~5 units at edge-a; links
        # (cap 10, load 5/unit) let barely 2 units leave. Ask for 20 units.
        arrivals = [_request(rid=i, demand=2.0) for i in range(10)]
        result = slotoff.run_slot(0, arrivals)
        accepted = [d for d in result.decisions if d.accepted]
        rejected = [d for d in result.decisions if not d.accepted]
        assert rejected, "overload must cause rejections"
        # Earliest-first apportioning: accepted ids form a prefix.
        accepted_ids = sorted(d.request.id for d in accepted)
        assert accepted_ids == list(range(len(accepted_ids)))
        # Rejected requests are not reconsidered in later slots.
        later = slotoff.run_slot(1, [])
        assert later.decisions == []
        assert slotoff.active_demand() == pytest.approx(
            sum(d.request.demand for d in accepted)
        )

    def test_release_removes_from_population(self, line_substrate, chain_app):
        slotoff = SlotOffAlgorithm(line_substrate, [chain_app])
        request = _request(rid=1, demand=2.0)
        slotoff.run_slot(0, [request])
        slotoff.release(request)
        assert slotoff.active_demand() == 0.0

    def test_empty_slot_costs_nothing(self, line_substrate, chain_app):
        slotoff = SlotOffAlgorithm(line_substrate, [chain_app])
        result = slotoff.run_slot(0, [])
        assert result.resource_cost == 0.0
        assert slotoff.active_cost_per_slot() == 0.0

    def test_quantile_config_propagates(self, line_substrate, chain_app):
        slotoff = SlotOffAlgorithm(
            line_substrate, [chain_app], config=PlanVNEConfig(num_quantiles=3)
        )
        assert slotoff.config.num_quantiles == 3
