"""The project call graph behind the RPS parallel-safety rules.

Two layers:

* unit tests over synthetic multi-module trees (written under a
  ``src/`` root so ``_module_name`` produces dotted names) exercising
  the resolution machinery: cross-module calls through the import
  table, ``self.method`` dispatch, class-attribute callable defaults,
  pool-submission entrypoints, reachability and pickle-root expansion;
* regression anchors over the shipped ``src`` tree — the facts the RPS
  rules depend on (the ``_PointTask.__call__`` worker entrypoint, the
  session pickle root, the pool-defining runner module) must stay true
  as the codebase grows.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.callgraph import ProjectGraph

REPO_ROOT = Path(__file__).resolve().parents[1]


def build(tmp_path: Path, files: dict[str, str]) -> ProjectGraph:
    """Materialize ``files`` under ``tmp_path/src`` and build the graph."""
    root = tmp_path / "src"
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return ProjectGraph.from_paths([root])


# -- resolution ---------------------------------------------------------------


class TestResolution:
    def test_cross_module_call_through_import(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/engine.py": "def run(x):\n    return x\n",
            "pkg/driver.py": (
                "from pkg.engine import run\n"
                "def caller(x):\n    return run(x)\n"
            ),
        })
        assert "pkg.engine.run" in graph.functions["pkg.driver.caller"].calls

    def test_self_method_dispatch(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/mod.py": (
                "class Engine:\n"
                "    def helper(self):\n        return 1\n"
                "    def go(self):\n        return self.helper()\n"
            ),
        })
        assert "pkg.mod.Engine.helper" in (
            graph.functions["pkg.mod.Engine.go"].calls
        )

    def test_class_attr_callable_default(self, tmp_path):
        """The ``_PointTask.run_fn`` shape: a field defaulting to a function."""
        graph = build(tmp_path, {
            "pkg/mod.py": (
                "def run_single(x):\n    return x\n"
                "class Task:\n"
                "    run_fn = run_single\n"
                "    def go(self, x):\n        return self.run_fn(x)\n"
            ),
        })
        assert "pkg.mod.run_single" in (
            graph.functions["pkg.mod.Task.go"].calls
        )

    def test_instantiation_edge_reaches_init(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/mod.py": (
                "class Engine:\n"
                "    def __init__(self):\n        self.state = {}\n"
                "def make():\n    return Engine()\n"
            ),
        })
        assert "pkg.mod.Engine" in graph.functions["pkg.mod.make"].instantiates
        assert "pkg.mod.Engine.__init__" in graph.reachable(["pkg.mod.make"])


# -- pool submissions ---------------------------------------------------------


POOL_MODULE = (
    "from concurrent.futures import ProcessPoolExecutor\n"
    "def run_point(seed):\n"
    "    return prepare(seed)\n"
    "def prepare(seed):\n"
    "    return {'metric': float(seed)}\n"
    "def fan_out(seeds):\n"
    "    with ProcessPoolExecutor() as pool:\n"
    "        return list(pool.map(run_point, seeds))\n"
)


class TestSubmissions:
    def test_map_resolves_module_function_entrypoint(self, tmp_path):
        graph = build(tmp_path, {"pkg/pool.py": POOL_MODULE})
        (site,) = graph.submissions
        assert site.kind == "map"
        assert site.entrypoints == ("pkg.pool.run_point",)
        assert site.unpicklable is None

    def test_lambda_submission_is_unpicklable(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/pool.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "def fan_out(seeds):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return list(pool.map(lambda s: s, seeds))\n"
            ),
        })
        (site,) = graph.submissions
        assert site.entrypoints == ()
        assert site.unpicklable is not None and "lambda" in site.unpicklable

    def test_submitted_task_instance_resolves_call_method(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/task.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "class PointTask:\n"
                "    def __call__(self, seed):\n        return seed\n"
                "def fan_out(seeds):\n"
                "    task = PointTask()\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return [pool.submit(task, s) for s in seeds]\n"
            ),
        })
        assert graph.worker_entrypoints() == {"pkg.task.PointTask.__call__"}

    def test_worker_reachability_spans_helpers(self, tmp_path):
        graph = build(tmp_path, {"pkg/pool.py": POOL_MODULE})
        reached = graph.reachable(graph.worker_entrypoints())
        assert "pkg.pool.prepare" in reached
        assert "pkg.pool.fan_out" not in reached


# -- module state and pickle roots --------------------------------------------


class TestModuleState:
    def test_mutable_globals_and_pool_definition(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/runner.py": (
                "from concurrent.futures import ProcessPoolExecutor\n"
                "_pools = {}\n"
                "SLOTS = 16\n"
                "def _shared_pool(workers):\n"
                "    return ProcessPoolExecutor(max_workers=workers)\n"
            ),
        })
        info = graph.modules["pkg.runner"]
        assert info.defines_pool
        assert "_pools" in info.mutable_globals
        assert "SLOTS" not in info.mutable_globals

    def test_global_statement_marks_name_mutable(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/mod.py": (
                "_default = None\n"
                "def set_default(value):\n"
                "    global _default\n"
                "    _default = value\n"
            ),
        })
        assert "_default" in graph.modules["pkg.mod"].mutable_globals

    def test_pickle_roots_expand_through_held_instances(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/session.py": (
                "class Engine:\n"
                "    def __init__(self):\n        self.state = {}\n"
                "class Session:\n"
                "    def __init__(self):\n"
                "        self.engine = Engine()\n"
                "    def snapshot(self):\n        return self\n"
            ),
        })
        roots = graph.pickle_roots()
        assert "pkg.session.Session" in roots, "snapshot() marks the root"
        assert "pkg.session.Engine" in roots, "held instances ride the pickle"

    def test_algorithm_duck_type_is_a_root(self, tmp_path):
        graph = build(tmp_path, {
            "pkg/alg.py": (
                "class Embedder:\n"
                "    def process(self, request):\n        return request\n"
                "    def release(self, request):\n        return None\n"
                "class Helper:\n"
                "    def process(self, request):\n        return request\n"
            ),
        })
        roots = graph.pickle_roots()
        assert "pkg.alg.Embedder" in roots
        assert "pkg.alg.Helper" not in roots, "process alone is not the duck"


# -- regression anchors over the shipped tree ---------------------------------


@pytest.fixture(scope="module")
def src_graph() -> ProjectGraph:
    return ProjectGraph.from_paths([REPO_ROOT / "src"])


class TestShippedTree:
    def test_point_task_is_the_worker_entrypoint(self, src_graph):
        assert "repro.api._PointTask.__call__" in (
            src_graph.worker_entrypoints()
        )

    def test_simulation_session_is_a_pickle_root(self, src_graph):
        assert "repro.sim.session.SimulationSession" in (
            src_graph.pickle_roots()
        )

    def test_runner_is_the_pool_defining_module(self, src_graph):
        runner = src_graph.modules["repro.sim.runner"]
        assert runner.defines_pool
        assert {"_pools", "_default_runner"} <= runner.mutable_globals

    def test_graph_covers_the_tree(self, src_graph):
        assert len(src_graph.modules) > 60
        assert len(src_graph.functions) > 400
        assert len(src_graph.classes) > 100
