"""Unit tests for the streaming simulation session (repro.sim.session).

The bit-identity of step-driven and checkpoint/restored sessions versus
the batch engine — for every algorithm × event profile — is pinned by
the differential oracle in ``tests/test_event_oracle.py``; this module
covers the lifecycle mechanics: slot open/close rules, ad-hoc
submission, partial results, snapshot semantics, and the resumable
event cursor.
"""

import numpy as np
import pytest

from repro.baselines.quickg import make_quickg
from repro.baselines.slotoff import SlotOffAlgorithm
from repro.errors import SimulationError
from repro.scenarios.events import (
    EventSchedule,
    IngressMigration,
    LinkFailure,
    LinkRecovery,
)
from repro.sim.engine import simulate
from repro.sim.session import SessionSnapshot, SimulationSession
from repro.workload.request import Request


def _request(rid, arrival=0, demand=1.0, duration=3, ingress="edge-a", app=0):
    return Request(
        arrival=arrival, id=rid, app_index=app, ingress=ingress,
        demand=demand, duration=duration,
    )


@pytest.fixture
def session(line_substrate, chain_app):
    algorithm = make_quickg(line_substrate, [chain_app])
    return SimulationSession(
        algorithm, [_request(i, arrival=i % 4) for i in range(8)], 10
    )


class TestLifecycle:
    def test_step_reports_cover_the_slot(self, line_substrate, chain_app):
        algorithm = make_quickg(line_substrate, [chain_app])
        requests = [
            _request(1, arrival=0, demand=2.0, duration=2),
            _request(2, arrival=0, demand=1.0, duration=5),
        ]
        session = SimulationSession(algorithm, requests, 6)
        report = session.step()
        assert report.slot == 0
        assert [d.request.id for d in report.decisions] == [1, 2]
        assert report.requested_demand == pytest.approx(3.0)
        assert report.allocated_demand == pytest.approx(3.0)
        assert report.num_accepted == 2
        assert report.departures == ()
        # Request 1 departs at slot 2.
        session.step()
        report = session.step()
        assert [r.id for r in report.departures] == [1]
        assert report.allocated_demand == pytest.approx(1.0)

    def test_clock_and_done(self, session):
        assert session.clock == 0 and not session.is_done
        for expected in range(10):
            assert session.step().slot == expected
        assert session.is_done
        with pytest.raises(SimulationError, match="horizon"):
            session.step()

    def test_double_begin_and_bare_close_fail(self, session):
        with pytest.raises(SimulationError, match="nothing to close"):
            session.close_slot()
        session.begin_slot()
        with pytest.raises(SimulationError, match="already open"):
            session.begin_slot()
        session.close_slot()

    def test_run_until_bounds(self, session):
        with pytest.raises(SimulationError, match="exceeds"):
            session.run_until(11)
        reports = session.run_until(4)
        assert [r.slot for r in reports] == [0, 1, 2, 3]
        assert session.run_until(4) == []
        with pytest.raises(SimulationError, match="past"):
            session.run_until(2)

    def test_iteration_yields_remaining_slots(self, session):
        session.run_until(7)
        assert [report.slot for report in session] == [7, 8, 9]

    def test_positive_horizon_required(self, line_substrate, chain_app):
        algorithm = make_quickg(line_substrate, [chain_app])
        with pytest.raises(SimulationError, match="positive horizon"):
            SimulationSession(algorithm, [], 0)

    def test_run_equals_batch_engine(self, line_substrate, chain_app):
        requests = [_request(i, arrival=i % 4) for i in range(12)]
        batch = simulate(make_quickg(line_substrate, [chain_app]), requests, 8)
        streamed = SimulationSession(
            make_quickg(line_substrate, [chain_app]), requests, 8
        ).run()
        assert streamed.decisions == batch.decisions
        assert np.array_equal(
            streamed.allocated_demand, batch.allocated_demand
        )
        assert np.array_equal(streamed.resource_cost, batch.resource_cost)


class TestSubmit:
    def test_submitted_interleaves_in_id_order(self, line_substrate, chain_app):
        """An ad-hoc submission lands exactly where the trace would put it."""
        requests = [_request(1, arrival=2), _request(5, arrival=2)]
        late = _request(3, arrival=2, demand=2.0)

        streamed = SimulationSession(
            make_quickg(line_substrate, [chain_app]), requests, 6
        )
        streamed.submit(late)
        assert streamed.pending_arrivals == 3
        result = streamed.run()

        batch = simulate(
            make_quickg(line_substrate, [chain_app]), [*requests, late], 6
        )
        assert result.decisions == batch.decisions
        assert np.array_equal(
            result.requested_demand, batch.requested_demand
        )

    def test_submit_rejects_past_open_and_beyond(self, session):
        session.run_until(3)
        with pytest.raises(SimulationError, match="passed"):
            session.submit(_request(90, arrival=2))
        session.begin_slot()
        with pytest.raises(SimulationError, match="begun"):
            session.submit(_request(91, arrival=3))
        session.submit(_request(92, arrival=4))  # future slots stay open
        session.close_slot()
        with pytest.raises(SimulationError, match="horizon"):
            session.submit(_request(93, arrival=10))

    def test_out_of_order_slots_replay_like_a_sorted_trace(
        self, line_substrate, chain_app
    ):
        """Submissions arriving in scrambled slot order behave exactly
        like a trace that carried them sorted from the start."""
        scrambled = [
            _request(30, arrival=5),
            _request(10, arrival=2, demand=2.0),
            _request(20, arrival=7, duration=1),
            _request(11, arrival=2),
            _request(12, arrival=5, demand=0.5),
        ]
        session = SimulationSession(
            make_quickg(line_substrate, [chain_app]), [], 8
        )
        for request in scrambled:
            session.submit(request)
        assert session.pending_arrivals == len(scrambled)
        result = session.run()

        # (arrival, id) order — id 12 overtakes the earlier-submitted 30.
        assert [d.request.id for d in result.decisions] == [
            10, 11, 12, 30, 20,
        ]
        batch = simulate(
            make_quickg(line_substrate, [chain_app]), sorted(scrambled), 8
        )
        assert result.decisions == batch.decisions
        assert np.array_equal(result.allocated_demand, batch.allocated_demand)

    def test_same_slot_descending_ids_process_in_id_order(
        self, line_substrate, chain_app
    ):
        session = SimulationSession(
            make_quickg(line_substrate, [chain_app]), [], 6
        )
        for rid in (9, 3, 6):
            session.submit(_request(rid, arrival=1))
        result = session.run()
        assert [d.request.id for d in result.decisions] == [3, 6, 9]

    def test_mid_run_submissions_interleave_with_seed_trace(
        self, line_substrate, chain_app
    ):
        """Late out-of-order submissions between steps still land in
        sorted position among the seed trace's pending arrivals."""
        seed_trace = [_request(i, arrival=i % 4) for i in range(8)]
        session = SimulationSession(
            make_quickg(line_substrate, [chain_app]), list(seed_trace), 10
        )
        session.run_until(2)
        extras = [_request(50, arrival=4), _request(40, arrival=3)]
        for request in extras:  # submitted later-slot-first
            session.submit(request)
        streamed = session.run()

        batch = simulate(
            make_quickg(line_substrate, [chain_app]),
            sorted(seed_trace + extras),
            10,
        )
        assert streamed.decisions == batch.decisions
        assert np.array_equal(
            streamed.allocated_demand, batch.allocated_demand
        )

    def test_submitted_departure_releases(self, line_substrate, chain_app):
        session = SimulationSession(
            make_quickg(line_substrate, [chain_app]), [], 8
        )
        session.submit(_request(1, arrival=1, demand=2.0, duration=2))
        result = session.run()
        assert result.allocated_demand[1] == pytest.approx(2.0)
        assert result.allocated_demand[3] == pytest.approx(0.0)


class TestProcess:
    def test_mid_slot_process(self, line_substrate, chain_app):
        session = SimulationSession(
            make_quickg(line_substrate, [chain_app]), [], 4
        )
        with pytest.raises(SimulationError, match="begin_slot"):
            session.process(_request(1, arrival=0))
        session.begin_slot()
        decision = session.process(_request(1, arrival=0, demand=2.0))
        assert decision.accepted
        with pytest.raises(SimulationError, match="open slot is 0"):
            session.process(_request(2, arrival=3))
        report = session.close_slot()
        assert report.requested_demand == pytest.approx(2.0)
        assert [d.request.id for d in report.decisions] == [1]

    def test_batch_algorithm_cannot_stream(self, line_substrate, chain_app):
        session = SimulationSession(
            SlotOffAlgorithm(line_substrate, [chain_app]), [], 4
        )
        assert not session.supports_streaming
        session.begin_slot()
        with pytest.raises(SimulationError, match="batch shape"):
            session.process(_request(1, arrival=0))
        session.close_slot()

    def test_batch_algorithm_steps_like_batch_engine(
        self, line_substrate, chain_app
    ):
        requests = [_request(i, arrival=i % 3) for i in range(6)]
        batch = simulate(
            SlotOffAlgorithm(line_substrate, [chain_app]), requests, 5
        )
        session = SimulationSession(
            SlotOffAlgorithm(line_substrate, [chain_app]), requests, 5
        )
        streamed = session.run()
        assert streamed.decisions == batch.decisions
        assert np.array_equal(
            streamed.allocated_demand, batch.allocated_demand
        )


class TestPartialResult:
    def test_mid_run_result_is_a_prefix(self, session):
        session.run_until(5)
        partial = session.result()
        assert partial.num_slots == 10
        assert np.all(partial.allocated_demand[5:] == 0.0)
        full = session.run()
        assert partial.decisions == full.decisions[: len(partial.decisions)]

    def test_result_refused_mid_slot(self, session):
        session.begin_slot()
        with pytest.raises(SimulationError, match="close_slot"):
            session.result()


class TestSnapshot:
    def test_snapshot_refused_mid_slot(self, session):
        session.begin_slot()
        with pytest.raises(SimulationError, match="close_slot"):
            session.snapshot()

    def test_snapshot_is_isolated_and_reusable(self, session):
        session.run_until(4)
        snapshot = session.snapshot()
        full = session.run()  # the live session keeps going
        first = SimulationSession.restore(snapshot).run()
        second = SimulationSession.restore(snapshot).run()
        assert first.decisions == full.decisions
        assert second.decisions == full.decisions
        assert np.array_equal(first.allocated_demand, full.allocated_demand)

    def test_snapshot_survives_pickle_roundtrip(self, session):
        session.run_until(3)
        snapshot = session.snapshot()
        full = session.run()
        revived = SessionSnapshot.from_bytes(snapshot.to_bytes())
        assert revived.clock == 3
        assert revived.algorithm_name == "QUICKG"
        resumed = SimulationSession.restore(revived).run()
        assert resumed.decisions == full.decisions

    def test_from_bytes_rejects_foreign_payload(self):
        import pickle

        with pytest.raises(SimulationError, match="checkpoint"):
            SessionSnapshot.from_bytes(pickle.dumps({"not": "a session"}))

    def test_restored_session_accepts_new_submissions(
        self, line_substrate, chain_app
    ):
        session = SimulationSession(
            make_quickg(line_substrate, [chain_app]),
            [_request(1, arrival=0, duration=8)], 8,
        )
        session.run_until(2)
        resumed = SimulationSession.restore(session.snapshot())
        resumed.submit(_request(2, arrival=4, demand=2.0))
        result = resumed.run()
        assert {d.request.id for d in result.decisions} == {1, 2}


class TestSessionEvents:
    def _schedule(self, substrate):
        link = next(iter(substrate.links))
        return EventSchedule(
            [LinkFailure(slot=2, link=link), LinkRecovery(slot=4, link=link)],
            policy="preempt",
        )

    def test_stepped_events_match_batch(self, line_substrate, chain_app):
        requests = [
            _request(i, arrival=i % 4, demand=2.0, duration=4)
            for i in range(10)
        ]
        schedule = self._schedule(line_substrate)
        batch = simulate(
            make_quickg(line_substrate, [chain_app]), requests, 8,
            events=schedule,
        )
        session = SimulationSession(
            make_quickg(line_substrate, [chain_app]), requests, 8,
            events=schedule,
        )
        reports = list(session)
        streamed = session.result()
        assert streamed.decisions == batch.decisions
        assert streamed.disruptions == batch.disruptions
        assert streamed.num_events == batch.num_events == 2
        assert sum(r.num_events for r in reports) == 2
        assert [r.slot for r in reports if r.num_events] == [2, 4]

    def test_live_arrivals_follow_ingress_migrations(
        self, line_substrate, chain_app
    ):
        """submit()/process() arrivals are re-homed exactly like the seed
        stream, so a live stream ≡ the same requests in the trace."""
        schedule = EventSchedule(
            [IngressMigration(slot=1, source="edge-a", target="edge-b",
                              until=4)]
        )
        migrated = _request(7, arrival=2, ingress="edge-a")
        outside = _request(8, arrival=5, ingress="edge-a")

        batch = simulate(
            make_quickg(line_substrate, [chain_app]), [migrated, outside], 8,
            events=schedule,
        )
        session = SimulationSession(
            make_quickg(line_substrate, [chain_app]), [], 8, events=schedule
        )
        session.submit(migrated)
        session.run_until(5)
        session.begin_slot()
        live = session.process(outside)
        session.close_slot()
        result = session.run()

        assert result.decisions == batch.decisions
        assert result.decision_by_id[7].request.ingress == "edge-b"
        assert live.request.ingress == "edge-a"  # outside the window

    def test_event_validation_matches_engine(self, line_substrate, chain_app):
        schedule = self._schedule(line_substrate)
        with pytest.raises(SimulationError, match="beyond"):
            SimulationSession(
                make_quickg(line_substrate, [chain_app]), [], 3,
                events=schedule,
            )


class TestEventCursor:
    def test_in_order_consumption(self, line_substrate):
        link = next(iter(line_substrate.links))
        schedule = EventSchedule([LinkFailure(slot=1, link=link)])
        cursor = schedule.cursor()
        assert cursor.advance(0) == ()
        assert not cursor.exhausted
        assert len(cursor.advance(1)) == 1
        assert cursor.exhausted
        assert cursor.state() == (2, 1)

    def test_rewind_and_skip_fail(self, line_substrate):
        link = next(iter(line_substrate.links))
        cursor = EventSchedule([LinkFailure(slot=1, link=link)]).cursor()
        cursor.advance(0)
        with pytest.raises(SimulationError, match="in order"):
            cursor.advance(0)
        with pytest.raises(SimulationError, match="in order"):
            cursor.advance(2)

    def test_resume_from_state(self, line_substrate):
        link = next(iter(line_substrate.links))
        schedule = EventSchedule(
            [LinkFailure(slot=1, link=link), LinkRecovery(slot=3, link=link)]
        )
        cursor = schedule.cursor()
        cursor.advance(0)
        cursor.advance(1)
        resumed = schedule.cursor(*cursor.state())
        assert resumed.advance(2) == ()
        assert len(resumed.advance(3)) == 1
        assert resumed.consumed == 2  # 1 carried over from the state + 1
