"""Suppression-mechanics corpus: honored, unused, and malformed allows."""

import time


def honored(flags: set):
    return list(flags)  # repro-lint: allow[RPR001] order feeds an unordered set, proven safe


def honored_multi_rule(flags: set):
    return sum(flags), time.time()  # repro-lint: allow[RPR001,RPR003,RPR005] demo of a multi-rule allow


def wrong_rule_id(flags: set):
    return list(flags)  # repro-lint: allow[RPR002] wrong rule: the finding is RPR001, so both fire


def unused():
    return [1, 2, 3]  # repro-lint: allow[RPR001] nothing here iterates a set


def missing_reason(flags: set):
    return list(flags)  # repro-lint: allow[RPR001]


def bad_rule_format(flags: set):
    return list(flags)  # repro-lint: allow[RPR01] truncated rule id


EXPECTED = {
    "RPR001": [15, 23, 27],
    "RPR901": [15, 19],
    "RPR900": [23, 27],
}
