"""RPS102 corpus: per-process divergence of module-level mutable state.

A distilled copy of the real ``repro.sim.runner`` hazard: the module
drives a process pool *and* keeps module-level mutables (``_pools``, a
``global``-rebound default). Every worker imports this module and owns a
private copy of that state — a write made inside a worker (or inside
anything a worker can reach) mutates only that worker's copy, so the
processes silently diverge while every individual one looks consistent.
"""

from concurrent.futures import ProcessPoolExecutor

_pools = {}
_results_log = []
_default_profile = "fast"
SLOTS = 16  # immutable module constant: reads are always safe


def _shared_pool(workers):
    pool = _pools.get(workers)
    if pool is None:
        pool = _pools[workers] = ProcessPoolExecutor(max_workers=workers)  # BAD
    return pool


def run_point(seed):
    """The submitted worker entrypoint."""
    record(seed)
    return {"metric": float(configure(seed) + SLOTS)}


def record(seed):
    _results_log.append(seed)  # BAD: worker-reachable write to a module list


def configure(seed):
    global _default_profile
    _default_profile = f"profile-{seed}"  # BAD: global rebinding in a worker
    return seed


def fan_out(seeds):
    return list(_shared_pool(4).map(run_point, seeds))


def parent_only_reset():
    _pools.clear()  # BAD: pool-driving module, workers own private copies


def local_shadow(seeds):
    _results_log = []  # OK: a local list shadowing the module name
    for seed in seeds:
        _results_log.append(seed)  # OK: mutates the local
    return _results_log


#: line -> expected rule findings (the corpus replay asserts exactness).
EXPECTED = {
    "RPS102": [22, 33, 38, 47],
}
