"""RPR001 corpus: set/frozenset iteration and unsorted listings.

The first function is a minimal reconstruction of the real pre-PR-3
``split_gpu_datacenters`` bug: the selected datacenters were collected
into a ``set`` and iterated directly, so the node split order — and with
it every GPU-scenario trace and result — depended on the process's hash
seed. ``EXPECTED`` at the bottom names each flagged line for the corpus
replay test.
"""

import glob
import os


def split_gpu_datacenters_pre_pr3(substrate, edge_pick):
    """The bug as shipped: iterate the selection set in hash order."""
    selected = set(substrate.core_nodes) | {
        substrate.edge_nodes[i] for i in edge_pick
    }
    nodes = {}
    for v in selected:  # BAD: split order follows the hash seed
        nodes[f"{v}-gpu"] = substrate.nodes[v]
    return nodes


def split_gpu_datacenters_post_pr3(substrate, edge_pick):
    """The fix as shipped: identical, plus sorted()."""
    selected = set(substrate.core_nodes) | {
        substrate.edge_nodes[i] for i in edge_pick
    }
    nodes = {}
    for v in sorted(selected):  # OK: deterministic split order
        nodes[f"{v}-gpu"] = substrate.nodes[v]
    return nodes


def materialize_in_order(pairs: set) -> list:
    return list(pairs)  # BAD: list() captures hash order


def comprehension_over_set(ids):
    generic = set(ids)
    return {i: "host" for i in generic}  # BAD: dict keeps insertion order


def annotated_parameter(finished: set) -> tuple:
    return tuple(x + 1 for x in finished)  # BAD: generator drains the set


def unsorted_listing(path):
    out = []
    for name in os.listdir(path):  # BAD: platform/inode order
        out.append(name)
    out.extend(glob.glob("*.json"))  # BAD: glob order is fs-dependent
    return out


def sorted_listing(path):
    return [name for name in sorted(os.listdir(path))]  # OK


def order_free_consumers(pairs: set):
    # OK: none of these depend on iteration order.
    return len(pairs), min(pairs), max(pairs), sorted(pairs), any(pairs)


def membership_only(finished: set, node) -> bool:
    return node in finished  # OK: membership tests are order-free


def list_iteration(items: list):
    return [x for x in items]  # OK: lists are ordered


def dict_iteration(table: dict):
    # OK: dict preserves insertion order (deterministic since 3.7).
    return [key for key in table]


def set_to_set(ids):
    # OK: a set comprehension's result is unordered anyway — rebuilding
    # one unordered container from another introduces no new hazard.
    return {i * 2 for i in set(ids)}


EXPECTED = {
    "RPR001": [21, 38, 43, 47, 52, 54],
}
