"""RPS103 corpus: checkpoint-stale state on snapshot-crossing classes.

``SessionSnapshot`` captures *instance* state via deepcopy/pickle.
Class-level mutable defaults are shared across instances and live on the
class object — a restored session aliases whatever the live process
mutated since the checkpoint. Instance attributes that alias a
module-level mutable are deep-copied at snapshot time, so the restored
copy silently diverges from the live module state.
"""

_PATH_CACHE = {}  # module-level mutable the session must not alias
_EPOCH = 4  # immutable: aliasing an int is value semantics


class Embedder:
    """Algorithm-shaped (``process``/``release``): crosses the boundary."""

    seen_apps = []  # BAD: class-level mutable shared across instances

    def __init__(self, substrate):
        self.substrate = substrate
        self.cache = _PATH_CACHE  # BAD: aliases a module-level mutable
        self.epoch = _EPOCH  # OK: immutable value copy
        self.active = {}  # OK: instance-owned mutable

    def process(self, request):
        self.seen_apps.append(request.app)
        return request

    def release(self, request):
        self.active.pop(request.id, None)


class ScratchBuffer:
    """Never crosses a snapshot/pool boundary: same shapes are fine."""

    shared = []  # OK: not a snapshot-crossing class

    def __init__(self):
        self.cache = _PATH_CACHE  # OK: not a snapshot-crossing class


#: line -> expected rule findings (the corpus replay asserts exactness).
EXPECTED = {
    "RPS103": [18, 22],
}
