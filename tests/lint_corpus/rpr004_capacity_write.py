"""RPR004 corpus: capacity writes that bypass the ResidualState setters.

The hazard: ``ResidualState.node_capacity``/``link_capacity`` are plain
lists; writing them directly "works" — but skips the residual shift and
the dirty-log append, so the greedy PathCache keeps serving shortest-path
trees computed against the stale capacity.
"""


def degrade_link_wrong(residual, position, factor):
    residual.link_capacity[position] *= factor  # BAD: no dirty-log entry
    return residual


def fail_node_wrong(residual, position):
    residual.node_capacity[position] = 0.0  # BAD: bypasses the setter
    return residual


def grow_wrong(residual, extra):
    residual.node_capacity.extend(extra)  # BAD: mutating the backing list
    residual.link_capacity.append(1.0)  # BAD: same, append flavor


def degrade_link_right(residual, link, factor):
    # OK: the setter shifts the residual and feeds the dirty log.
    nominal = residual.nominal_link_capacity(link)
    return residual.set_link_capacity(link, nominal * factor)


def read_is_fine(residual, position):
    return residual.node_capacity[position]  # OK: reads are unrestricted


def unrelated_names(table, position):
    table.capacity[position] = 3.0  # OK: not a capacity list
    local_node_capacity = [1.0]
    local_node_capacity[0] = 2.0  # OK: a local list, not an attribute
    return table, local_node_capacity


EXPECTED = {
    "RPR004": [11, 16, 21, 22],
}
