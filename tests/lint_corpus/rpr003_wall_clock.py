"""RPR003 corpus: wall-clock reads outside the runtime-metrics whitelist."""

import time
from datetime import datetime
from time import perf_counter


def stamp_result(result):
    result["generated_at"] = time.time()  # BAD: wall clock into a result
    return result


def measure_inline():
    start = perf_counter()  # BAD: from-imported wall-clock read
    return perf_counter() - start  # BAD: and again


def label_run():
    return datetime.now().isoformat()  # BAD: datetime wall clock


class Metrics:
    runtime = 2.5
    num_slots = 10
    num_requests = 400

    @property
    def slots_per_second(self):
        # OK: the whitelisted runtime-metric context — goldens treat the
        # value as key-only, so wall-clock variance never fails a diff.
        elapsed = time.perf_counter() - self.runtime
        return self.num_slots / elapsed if elapsed > 0 else 0.0

    @property
    def requests_per_second(self):
        return self.num_requests / max(time.monotonic(), 1e-9)  # OK


def suppressed_read():
    return time.time()  # repro-lint: allow[RPR003] CLI banner timestamp, never recorded


EXPECTED = {
    "RPR003": [9, 14, 15, 19],
}
