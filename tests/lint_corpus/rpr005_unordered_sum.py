"""RPR005 corpus: float accumulation over unordered containers."""

import math


def total_demand_wrong(loads: set) -> float:
    return sum(loads)  # BAD: float addition order follows hash order


def total_via_generator(demands):
    pending = set(demands)
    return sum(d * 1.5 for d in pending)  # BAD: generator drains a set


def total_demand_sorted(loads: set) -> float:
    return sum(sorted(loads))  # OK: deterministic accumulation order


def total_demand_fsum(loads: set) -> float:
    return math.fsum(loads)  # OK: fsum is exact, hence order-independent


def total_over_list(loads: list) -> float:
    return sum(loads)  # OK: lists are ordered


def total_over_dict_values(table: dict) -> float:
    return sum(table.values())  # OK: dict order is insertion order


def count_members(flags: set) -> int:
    # A set of ints summed for a *count* is still flagged — the linter
    # cannot see element types, and int-only sums are the rare case.
    return sum(flags)  # BAD (deliberately): see docs/ANALYSIS.md


EXPECTED = {
    "RPR005": [7, 12, 34],
}
