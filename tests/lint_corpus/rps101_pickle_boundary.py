"""RPS101 corpus: unpicklable values crossing the pool/pickle boundary.

Workers receive their callable by pickling, and ``SessionSnapshot``
serializes whole object graphs — a lambda handed to ``pool.map``, or a
thread lock stored on a snapshot-crossing instance, dies at submission
(or worse, at the first checkpoint under a spawning start method).
"""

import threading
from concurrent.futures import ProcessPoolExecutor


def run_point(seed):
    """Module-level function: the picklable way to cross the boundary."""
    return {"metric": float(seed)}


def fan_out_module_function(seeds):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(run_point, seeds))  # OK: module-level callable


def fan_out_lambda(seeds):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(lambda s: {"m": float(s)}, seeds))  # BAD


def fan_out_local_def(seeds):
    def run(seed):  # a closure: pickle refuses local functions
        return {"m": float(seed)}

    with ProcessPoolExecutor() as pool:
        return list(pool.map(run, seeds))  # BAD: local function submitted


class StreamSession:
    """Distilled session: ``snapshot()`` marks it pickle-crossing."""

    def __init__(self, algorithm):
        self.algorithm = algorithm
        self.guard = threading.Lock()  # BAD: lock on a snapshot class
        self.log = open("decisions.log", "a")  # BAD: open handle
        self.key_fn = lambda record: record.id  # BAD: lambda attribute
        self.pool = ProcessPoolExecutor(max_workers=2)  # BAD: executor
        self.trace = []  # OK: a plain instance-owned list pickles fine

    def snapshot(self):
        import copy

        return copy.deepcopy(self)


class PlainHolder:
    """Never crosses a boundary: the same attribute shapes are fine."""

    def __init__(self):
        self.guard = threading.Lock()  # OK: stays in this process


#: line -> expected rule findings (the corpus replay asserts exactness).
EXPECTED = {
    "RPS101": [25, 33, 41, 42, 43, 44],
}
