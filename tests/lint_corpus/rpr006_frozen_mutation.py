"""RPR006 corpus: frozen-record mutation and registry internals."""

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class LinkFailure:
    slot: int
    link: str


def retarget_event_wrong(event: LinkFailure, new_slot: int) -> LinkFailure:
    object.__setattr__(event, "slot", new_slot)  # BAD: mutates a frozen record
    return event


def retarget_event_right(event: LinkFailure, new_slot: int) -> LinkFailure:
    return dataclasses.replace(event, slot=new_slot)  # OK: rebuild


@dataclass(frozen=True)
class CachedView:
    source: str

    def __post_init__(self) -> None:
        # OK: the owning class finishing its own construction is the one
        # sanctioned use of object.__setattr__ on a frozen dataclass.
        object.__setattr__(self, "source", self.source.strip())


def hot_swap_algorithm(registry, name, factory):
    registry._entries[name] = factory  # BAD: bypasses duplicate policy
    return registry


def peek_registry(registry):
    return list(registry._entries)  # BAD: reaching into the table


def sanctioned_registry_use(registry, name):
    entry = registry.get(name)  # OK: public lookup
    return entry, registry.as_mapping()  # OK: read-only view


EXPECTED = {
    "RPR006": [14, 33, 38],
}
