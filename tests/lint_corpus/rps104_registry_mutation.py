"""RPS104 corpus: registry mutation outside module import scope.

Worker processes and restored sessions replay module *imports*, not
call sequences — a registration made inside a function exists only in
the process that happened to call it, so name lookups diverge across
the pool. The sanctioned path is the decorator form at module (or
class) scope, which every importing process replays identically.
"""

from repro.registry import algorithm_registry, register_algorithm


@register_algorithm("CORPUS-OK", description="import-time registration")
def _make_ok(scenario):  # OK: module-scope decorator runs at import
    return scenario


def _factory(scenario):
    return scenario


# OK: a direct module-scope call still runs at import time.
algorithm_registry.register("CORPUS-DIRECT", description="ok")(_factory)


def register_lazily(name):
    @register_algorithm(name, description="late")  # BAD: call-time
    def _make(scenario):
        return scenario

    return _make


def swap_entry(name, factory):
    algorithm_registry.unregister(name)  # BAD: call-time unregister
    algorithm_registry.register(name, description="swap")(factory)  # BAD


class PluginLoader:
    def load(self, name, factory):
        register_algorithm(name, description="plugin")(factory)  # BAD


#: line -> expected rule findings (the corpus replay asserts exactness).
EXPECTED = {
    "RPS104": [27, 35, 36, 41],
}
