"""RPR002 corpus: global-state RNG vs seeded generators."""

import random
from random import shuffle

import numpy as np
from numpy.random import default_rng


def draw_demand_global():
    return random.gauss(100.0, 15.0)  # BAD: process-global random state


def shuffle_in_place(items):
    shuffle(items)  # BAD: from-import of a random module function
    return items


def legacy_numpy_draws(n):
    np.random.seed(42)  # BAD: reseeds the global RandomState
    a = np.random.rand(n)  # BAD: legacy global API
    b = np.random.randint(0, 10, size=n)  # BAD: legacy global API
    return a, b


def sanctioned_generator(seed: int):
    rng = np.random.default_rng(seed)  # OK: explicit seeded Generator
    alias = default_rng(seed)  # OK: same constructor, from-imported
    return rng.integers(0, 10, size=4), alias.random()


def sanctioned_spawning(seed: int):
    seq = np.random.SeedSequence(seed)  # OK: explicit seed plumbing
    return np.random.default_rng(seq)


def unrelated_random_attribute(trace):
    # OK: .random on a non-module object resolves to trace.random, and
    # local names do not collide with the random module unless imported.
    return trace.randomize()


EXPECTED = {
    "RPR002": [11, 15, 20, 21, 22],
}
