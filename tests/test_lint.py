"""The determinism linter: framework mechanics, rule corpus, src gate.

Three layers:

* unit tests for the framework (import resolution, scope inference,
  suppression parsing, baseline semantics, report formats, exit codes);
* a corpus replay — every file under ``tests/lint_corpus/`` declares the
  findings it expects in an ``EXPECTED`` map, including a reconstruction
  of the real pre-PR-3 ``split_gpu_datacenters`` set-iteration bug;
* the tier-1 gate: ``repro.devtools.lint`` over the shipped ``src`` tree
  must report zero unsuppressed findings.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.devtools.lint import (
    Baseline,
    LintError,
    default_rules,
    lint_file,
    run_lint,
    select_rules,
)
from repro.devtools.lint.__main__ import main as lint_main
from repro.devtools.lint.framework import FileContext, ImportTable
from repro.devtools.lint.report import JSON_SCHEMA_VERSION

REPO_ROOT = Path(__file__).resolve().parents[1]
CORPUS_DIR = Path(__file__).resolve().parent / "lint_corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.py"))


def lint_source(tmp_path: Path, source: str, name: str = "sample.py"):
    """Lint an inline source string; returns the findings list."""
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return lint_file(path, default_rules(), name)


def active(findings):
    return [f for f in findings if not f.suppressed]


# -- the shipped tree is clean (tier-1 gate) ---------------------------------


class TestSourceTreeIsClean:
    def test_src_has_zero_unsuppressed_findings(self):
        report = run_lint([REPO_ROOT / "src"], root=REPO_ROOT)
        assert report.files_scanned > 70
        messages = [f.format_human() for f in report.new]
        assert report.new == [], "\n".join(messages)

    def test_every_suppression_carries_a_reason(self):
        report = run_lint([REPO_ROOT / "src"], root=REPO_ROOT)
        assert report.suppressed, "expected documented suppressions in src"
        for finding in report.suppressed:
            assert len(finding.suppress_reason) >= 10, finding.format_human()

    def test_shipped_baseline_is_empty(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert not baseline.counts

    def test_src_is_rps_clean(self):
        """The parallel-safety family alone certifies the shipped tree.

        This is the pre-sharding gate from the RPS design: the worker /
        pickle boundary audit must pass with zero unsuppressed findings
        before any pool fan-out is trusted.
        """
        report = run_lint(
            [REPO_ROOT / "src"],
            rules=select_rules(["RPS"]),
            root=REPO_ROOT,
        )
        messages = [f.format_human() for f in report.new]
        assert report.new == [], "\n".join(messages)
        rps_suppressed = [
            f for f in report.suppressed if f.rule.startswith("RPS")
        ]
        assert rps_suppressed, "expected documented RPS102 allows in runner"
        for finding in rps_suppressed:
            assert "repro/sim/runner.py" in finding.path


# -- corpus replay ------------------------------------------------------------


def corpus_expected(path: Path) -> dict[str, list[int]]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and getattr(node.targets[0], "id", "") == "EXPECTED"
        ):
            return ast.literal_eval(node.value)
    raise AssertionError(f"{path.name} has no EXPECTED map")


class TestCorpusReplay:
    def test_corpus_is_populated(self):
        names = {path.name for path in CORPUS_FILES}
        for rule in range(1, 7):
            assert any(f"rpr00{rule}" in name for name in names), (
                f"no corpus file exercises RPR00{rule}"
            )
        for rule in range(101, 105):
            assert any(f"rps{rule}" in name for name in names), (
                f"no corpus file exercises RPS{rule}"
            )

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
    )
    def test_findings_match_expected(self, path):
        findings = lint_file(path, default_rules(), path.name)
        got: dict[str, list[int]] = {}
        for finding in active(findings):
            got.setdefault(finding.rule, []).append(finding.line)
        assert got == corpus_expected(path)

    def test_rpr001_catches_the_pre_pr3_split_gpu_bug(self):
        """The motivating real bug: split order followed the hash seed."""
        path = CORPUS_DIR / "rpr001_set_iteration.py"
        findings = lint_file(path, select_rules(["RPR001"]), path.name)
        by_context = {f.context for f in active(findings)}
        assert "split_gpu_datacenters_pre_pr3" in by_context
        assert "split_gpu_datacenters_post_pr3" not in by_context

    def test_rps102_catches_the_distilled_pools_divergence(self):
        """The motivating hazard: repro.sim.runner's module pool table."""
        path = CORPUS_DIR / "rps102_worker_globals.py"
        findings = lint_file(path, select_rules(["RPS102"]), path.name)
        by_context = {f.context for f in active(findings)}
        assert "_shared_pool" in by_context, "pool-table write missed"
        assert "configure" in by_context, "worker-reachable rebind missed"
        assert "local_shadow" not in by_context, "local shadowing is safe"


# -- rule selection -----------------------------------------------------------


class TestRuleSelection:
    def test_family_prefix_selects_whole_family(self):
        ids = sorted(rule.rule_id for rule in select_rules(["RPS"]))
        assert ids == ["RPS101", "RPS102", "RPS103", "RPS104"]

    def test_exact_id_still_works(self):
        (rule,) = select_rules(["RPS102"])
        assert rule.rule_id == "RPS102"

    def test_prefix_and_exact_tokens_union(self):
        ids = sorted(
            rule.rule_id for rule in select_rules(["RPS", "RPR001"])
        )
        assert ids == ["RPR001", "RPS101", "RPS102", "RPS103", "RPS104"]

    def test_unknown_token_raises(self):
        with pytest.raises(LintError):
            select_rules(["RPX"])

    def test_subset_run_ignores_foreign_suppressions(self, tmp_path):
        """A suppression for an unselected rule must not trip RPR901."""
        path = tmp_path / "mod.py"
        path.write_text(
            "def f(s: set):\n"
            "    return list(s)  # repro-lint: allow[RPR001] fixture safe here\n",
            encoding="utf-8",
        )
        findings = lint_file(path, select_rules(["RPR003"]), "mod.py")
        assert findings == []

    def test_subset_run_still_flags_judgeable_unused(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def f():\n"
            "    return 1  # repro-lint: allow[RPR003] nothing clocked here\n",
            encoding="utf-8",
        )
        findings = lint_file(path, select_rules(["RPR003"]), "mod.py")
        assert [f.rule for f in findings] == ["RPR901"]


# -- scope/import tracking ----------------------------------------------------


class TestImportTable:
    def qualify(self, source: str, expr: str) -> str | None:
        table = ImportTable()
        for node in ast.walk(ast.parse(source)):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                table.record(node)
        return table.qualify(ast.parse(expr, mode="eval").body)

    def test_plain_import(self):
        assert self.qualify("import time", "time.time") == "time.time"

    def test_aliased_import(self):
        assert self.qualify("import numpy as np", "np.random.rand") == (
            "numpy.random.rand"
        )

    def test_from_import_with_alias(self):
        assert self.qualify(
            "from time import perf_counter as pc", "pc"
        ) == "time.perf_counter"

    def test_dotted_import_alias(self):
        assert self.qualify(
            "import os.path as osp", "osp.join"
        ) == "os.path.join"

    def test_unresolvable_dynamic_expr(self):
        assert self.qualify("import time", "get_clock().time") is None


class TestScopeInference:
    def test_annotated_parameter_is_set_typed(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(items: set):\n    return [x for x in items]\n",
        )
        assert [f.rule for f in findings] == ["RPR001"]

    def test_set_returning_local_function(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def make() -> set[int]:\n"
            "    return {1, 2}\n"
            "def use():\n"
            "    items = make()\n"
            "    return list(items)\n",
        )
        assert [f.rule for f in findings] == ["RPR001"]

    def test_rebinding_clears_set_type(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(raw):\n"
            "    items = set(raw)\n"
            "    items = sorted(items)\n"
            "    return [x for x in items]\n",
        )
        assert findings == []

    def test_set_union_expression(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(a: set, b: set):\n"
            "    for x in a | b:\n"
            "        print(x)\n",
        )
        assert [f.rule for f in findings] == ["RPR001"]

    def test_inner_scope_does_not_leak(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def outer():\n"
            "    def inner():\n"
            "        items = set()\n"
            "        return items\n"
            "    items = [1]\n"
            "    return [x for x in items]\n",
        )
        assert findings == []


# -- suppressions -------------------------------------------------------------


class TestSuppressions:
    def test_allow_with_reason_suppresses(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(s: set):\n"
            "    return list(s)  # repro-lint: allow[RPR001] proven safe here\n",
        )
        assert active(findings) == []
        (finding,) = findings
        assert finding.suppressed
        assert finding.suppress_reason == "proven safe here"

    def test_unused_allow_is_an_error(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f():\n"
            "    return 1  # repro-lint: allow[RPR001] nothing happens here\n",
        )
        assert [f.rule for f in findings] == ["RPR901"]

    def test_missing_reason_is_malformed_and_inert(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(s: set):\n    return list(s)  # repro-lint: allow[RPR001]\n",
        )
        assert sorted(f.rule for f in findings) == ["RPR001", "RPR900"]

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(s: set):\n"
            "    return list(s)  # repro-lint: allow[RPR004] wrong rule\n",
        )
        assert sorted(f.rule for f in findings) == ["RPR001", "RPR901"]

    def test_marker_inside_string_is_inert(self, tmp_path):
        findings = lint_source(
            tmp_path,
            'DOC = "use # repro-lint: allow[RPR001] to suppress"\n',
        )
        assert findings == []

    def test_wildcard_allow(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import time\n"
            "def f(s: set):\n"
            "    return list(s), time.time()  # repro-lint: allow[*] fixture needs both hazards\n",
        )
        assert active(findings) == []
        assert len([f for f in findings if f.suppressed]) == 2


# -- baseline semantics -------------------------------------------------------


BASELINE_SOURCE = (
    "import time\n"
    "def f(s: set):\n"
    "    return list(s)\n"
    "def g():\n"
    "    return time.time()\n"
)


class TestBaseline:
    def test_baselined_findings_do_not_fail(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(BASELINE_SOURCE, encoding="utf-8")
        first = run_lint([path])
        assert len(first.new) == 2
        baseline = Baseline.from_findings(first.new)
        second = run_lint([path], baseline=baseline)
        assert second.new == []
        assert len(second.baselined) == 2
        assert second.exit_code == 0

    def test_new_finding_still_fails(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(BASELINE_SOURCE, encoding="utf-8")
        baseline = Baseline.from_findings(run_lint([path]).new)
        path.write_text(
            BASELINE_SOURCE + "def h(q: set):\n    return tuple(q)\n",
            encoding="utf-8",
        )
        report = run_lint([path], baseline=baseline)
        assert len(report.new) == 1
        assert report.new[0].context == "h"
        assert report.exit_code == 1

    def test_fixed_finding_goes_stale(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(BASELINE_SOURCE, encoding="utf-8")
        baseline = Baseline.from_findings(run_lint([path]).new)
        path.write_text(  # fix g(): drop the wall-clock read
            "def f(s: set):\n    return list(s)\n", encoding="utf-8"
        )
        report = run_lint([path], baseline=baseline)
        assert report.new == []
        assert len(report.stale_baseline) == 1
        assert report.exit_code == 1, "stale entries must force a ratchet"

    def test_duplicate_findings_are_counted(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "def f(s: set):\n    return list(s), list(s)\n", encoding="utf-8"
        )
        first = run_lint([path])
        assert len(first.new) == 2
        baseline = Baseline.from_findings(first.new[:1])
        report = run_lint([path], baseline=baseline)
        assert len(report.new) == 1, "one slot cannot absorb two findings"

    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(BASELINE_SOURCE, encoding="utf-8")
        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(run_lint([path]).new).write(baseline_path)
        loaded = Baseline.load(baseline_path)
        report = run_lint([path], baseline=loaded)
        assert report.new == [] and report.exit_code == 0

    def test_version_mismatch_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "findings": []}', encoding="utf-8")
        with pytest.raises(LintError, match="version"):
            Baseline.load(bad)


# -- report formats and fingerprints -----------------------------------------


class TestReports:
    def test_json_schema(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(BASELINE_SOURCE, encoding="utf-8")
        report = run_lint([path])
        payload = json.loads(report.to_json())
        assert payload["schema_version"] == JSON_SCHEMA_VERSION
        assert payload["tool"] == "repro-lint"
        assert payload["files_scanned"] == 1
        assert payload["summary"] == {
            "total": 2, "new": 2, "baselined": 0, "suppressed": 0,
        }
        for entry in payload["findings"]:
            assert set(entry) >= {
                "rule", "path", "line", "col", "message",
                "context", "fingerprint", "suppressed",
            }
        assert payload["new"] == [
            e["fingerprint"] for e in payload["findings"]
        ]

    def test_github_annotations(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("def f(s: set):\n    return list(s)\n")
        report = run_lint([path])
        output = report.to_github()
        assert "::error file=" in output
        assert "title=RPR001" in output

    def test_fingerprint_survives_line_drift(self, tmp_path):
        first = lint_source(
            tmp_path, "def f(s: set):\n    return list(s)\n", "a.py"
        )
        shifted = lint_source(
            tmp_path,
            "import json\n\n\ndef f(s: set):\n    return list(s)\n",
            "a.py",
        )
        assert first[0].fingerprint == shifted[0].fingerprint

    def test_fingerprint_distinguishes_contexts(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "def f(s: set):\n    return list(s)\n"
            "def g(s: set):\n    return list(s)\n",
        )
        assert findings[0].fingerprint != findings[1].fingerprint


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = [1, 2]\n", encoding="utf-8")
        assert lint_main([str(tmp_path)]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "def f(s: set):\n    return list(s)\n", encoding="utf-8"
        )
        assert lint_main([str(tmp_path)]) == 1
        assert "RPR001" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert lint_main([str(tmp_path), "--select", "RPR999"]) == 2

    def test_json_flag(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "def f(s: set):\n    return list(s)\n", encoding="utf-8"
        )
        assert lint_main([str(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1

    def test_select_restricts_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\n"
            "def f(s: set):\n    return list(s)\n"
            "def g():\n    return time.time()\n",
            encoding="utf-8",
        )
        assert lint_main([str(tmp_path), "--select", "RPR003"]) == 1
        out = capsys.readouterr().out
        assert "RPR003" in out and "RPR001" not in out

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
            "RPS101", "RPS102", "RPS103", "RPS104",
        ):
            assert rule_id in out

    def test_select_family_prefix_from_cli(self, tmp_path, capsys):
        (tmp_path / "late.py").write_text(
            "from repro.registry import algorithm_registry\n"
            "def late(name, factory):\n"
            "    algorithm_registry.register(name)(factory)\n",
            encoding="utf-8",
        )
        assert lint_main([str(tmp_path), "--select", "RPS"]) == 1
        out = capsys.readouterr().out
        assert "RPS104" in out and "RPR" not in out

    def test_write_then_check_baseline(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "def f(s: set):\n    return list(s)\n", encoding="utf-8"
        )
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            [str(tmp_path), "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert lint_main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_write_baseline_requires_path(self, capsys):
        assert lint_main(["--write-baseline"]) == 2


# -- framework edge cases -----------------------------------------------------


class TestFrameworkEdges:
    def test_unparseable_file_raises_lint_error(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n", encoding="utf-8")
        with pytest.raises(LintError, match="cannot parse"):
            FileContext.parse(path)

    def test_findings_are_sorted_by_position(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "import time\n"
            "def g():\n    return time.time()\n"
            "def f(s: set):\n    return list(s)\n",
        )
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_directory_traversal_is_deterministic(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text(
                "def f(s: set):\n    return list(s)\n", encoding="utf-8"
            )
        report = run_lint([tmp_path])
        assert [f.path for f in report.findings] == sorted(
            f.path for f in report.findings
        )
