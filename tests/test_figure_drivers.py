"""Smoke tests for the per-figure experiment drivers at test scale.

Each driver must return the structure the benchmarks consume. These use
the smallest viable configurations — the paper-shape assertions live in
``benchmarks/``; here we only verify plumbing.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    run_balance_quantiles,
    run_caida,
    run_demand_zoom,
    run_rejection_vs_utilization,
    run_runtime_scaling,
    run_shifted_plan,
    run_unexpected_demand,
)


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig.test(
        history_slots=80, online_slots=16, measure_start=2, measure_stop=14
    )


class TestSweepDrivers:
    def test_rejection_vs_utilization_structure(self, tiny_config):
        data = run_rejection_vs_utilization(
            tiny_config, (0.8,), algorithms=("OLIVE", "QUICKG")
        )
        assert set(data) == {0.8}
        summary = data[0.8]
        assert "OLIVE:rejection_rate" in summary
        assert "QUICKG:total_cost" in summary
        assert summary["OLIVE:rejection_rate"].count == 1

    def test_demand_zoom_series_alignment(self, tiny_config):
        series = run_demand_zoom(
            tiny_config, (2, 10), algorithms=("QUICKG",)
        )
        data = series["QUICKG"]
        assert list(data["slots"]) == list(range(2, 10))
        assert len(data["allocated"]) == 8

    def test_balance_quantiles_keys(self, tiny_config):
        summary = run_balance_quantiles(tiny_config, (1, 2))
        assert set(summary) == {"QUICKG", "OLIVE:P=1", "OLIVE:P=2"}

    def test_unexpected_demand_keys(self, tiny_config):
        summary = run_unexpected_demand(
            tiny_config, (0.5,), reference_algorithms=("OLIVE", "QUICKG")
        )
        assert set(summary) == {"OLIVE", "QUICKG", "OLIVE:plan=50%"}

    def test_shifted_plan_structure(self, tiny_config):
        data = run_shifted_plan(tiny_config, (1.0,))
        assert "OLIVE:rejection_rate" in data[1.0]

    def test_caida_uses_caida_trace(self, tiny_config):
        data = run_caida(
            tiny_config, (1.0,), algorithms=("QUICKG",)
        )
        assert "QUICKG:rejection_rate" in data[1.0]

    def test_runtime_scaling_structure(self, tiny_config):
        data = run_runtime_scaling(
            tiny_config,
            arrival_rates=(2.0,),
            utilizations=(1.0,),
            algorithms=("QUICKG",),
        )
        assert set(data) == {"by_rate", "by_utilization"}
        assert 2.0 in data["by_rate"]
        assert data["by_rate"][2.0]["QUICKG"].mean >= 0
