"""The typed-core gate: the strict-mypy modules stay fully annotated.

CI's static-analysis job runs mypy itself; these tests keep the gate
honest from inside the test suite. The annotation-completeness check is
pure AST — it runs everywhere, including environments without mypy — and
enforces the same contract as ``disallow_untyped_defs`` +
``disallow_incomplete_defs``: every function in a typed-core module
annotates every parameter and its return. The mypy test proper runs only
where mypy is importable (it is in CI) and must come back clean.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

tomllib = pytest.importorskip(
    "tomllib", reason="tomllib is 3.11+; the gate runs on CI's 3.11 job"
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
PYPROJECT = REPO_ROOT / "pyproject.toml"

#: The strict typed core, as module names (must mirror pyproject.toml).
TYPED_CORE = (
    "repro.devtools.callgraph",
    "repro.devtools.lint",
    "repro.devtools.lint.__main__",
    "repro.devtools.lint.baseline",
    "repro.devtools.lint.framework",
    "repro.devtools.lint.parallel_rules",
    "repro.devtools.lint.report",
    "repro.devtools.lint.rules",
    "repro.devtools.lint.suppressions",
    "repro.registry",
    "repro.scenarios.events",
    "repro.sim.runner",
    "repro.sim.session",
    "repro.serve",
    "repro.serve.admission",
    "repro.serve.metrics",
    "repro.serve.service",
    "repro.serve.traffic",
    "repro.workload.adversarial",
)


def _module_path(module: str) -> Path:
    parts = module.split(".")
    package = SRC.joinpath(*parts)
    if package.is_dir():
        return package / "__init__.py"
    return package.with_suffix(".py")


def _mypy_overrides() -> list[dict]:
    with PYPROJECT.open("rb") as handle:
        return tomllib.load(handle)["tool"]["mypy"]["overrides"]


class TestGateConfiguration:
    def test_py_typed_marker_ships(self):
        assert (SRC / "repro" / "py.typed").exists(), (
            "src/repro/py.typed is the PEP 561 marker telling type "
            "checkers the package carries inline types; do not drop it"
        )

    def test_pyproject_lists_the_typed_core(self):
        strict = [
            override
            for override in _mypy_overrides()
            if override.get("ignore_errors") is False
        ]
        assert len(strict) == 1, "expected exactly one strict override block"
        assert tuple(strict[0]["module"]) == TYPED_CORE, (
            "pyproject's strict-core module list drifted from the gate "
            "test's; update both together (promotion is deliberate)"
        )
        for flag in (
            "disallow_untyped_defs",
            "disallow_incomplete_defs",
            "check_untyped_defs",
        ):
            assert strict[0][flag] is True, f"strict core must set {flag}"

    def test_baseline_override_stays_lenient(self):
        baseline = [
            override
            for override in _mypy_overrides()
            if override.get("module") == "repro.*"
        ]
        assert len(baseline) == 1
        assert baseline[0]["ignore_errors"] is True


def _unannotated_defs(path: Path) -> list[str]:
    """``name:line`` for every def missing a param or return annotation."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    problems: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        arguments = node.args
        params = list(arguments.posonlyargs) + list(arguments.args) + list(
            arguments.kwonlyargs
        )
        # ``self``/``cls`` never need annotations (mypy agrees).
        if params and params[0].arg in ("self", "cls"):
            params = params[1:]
        missing = [p.arg for p in params if p.annotation is None]
        for vararg in (arguments.vararg, arguments.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append(vararg.arg)
        if node.returns is None and node.name != "__init__":
            missing.append("return")
        if missing:
            problems.append(
                f"{node.name}:{node.lineno} missing {', '.join(missing)}"
            )
    return problems


class TestAnnotationCompleteness:
    """The mypy-free half of the gate (runs in every environment)."""

    @pytest.mark.parametrize("module", TYPED_CORE)
    def test_every_def_is_fully_annotated(self, module):
        path = _module_path(module)
        assert path.exists(), f"typed-core module {module} has no file"
        problems = _unannotated_defs(path)
        assert not problems, (
            f"{module} is in the strict typed core but has unannotated "
            f"functions (disallow_untyped_defs would reject them): "
            + "; ".join(problems)
        )


class TestMypyGate:
    """The real check — runs wherever mypy is importable (CI is)."""

    def test_typed_core_is_mypy_clean(self):
        mypy_api = pytest.importorskip(
            "mypy.api", reason="mypy not installed; CI runs this gate"
        )
        stdout, stderr, status = mypy_api.run(
            [
                "--config-file",
                str(PYPROJECT),
                "--no-incremental",
                str(SRC / "repro"),
            ]
        )
        assert status == 0, (
            f"mypy gate failed (exit {status}):\n{stdout}\n{stderr}"
        )
