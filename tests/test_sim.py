"""Unit tests for the simulator, metrics, and runner (repro.sim)."""

import numpy as np
import pytest

from repro.baselines.quickg import make_quickg
from repro.baselines.slotoff import SlotOffAlgorithm
from repro.core.olive import Decision
from repro.errors import SimulationError
from repro.plan.pattern import Plan
from repro.sim.engine import SimulationResult, SlotSimulator, simulate
from repro.sim.metrics import (
    NodeTimeline,
    balance_index,
    cost_breakdown,
    demand_series,
    rejection_rate,
)
from repro.sim.runner import confidence_interval, repeat_runs
from repro.workload.request import Request
from tests.conftest import make_line_substrate, make_two_vnf_chain


def _request(rid, arrival=0, demand=1.0, duration=3, ingress="edge-a", app=0):
    return Request(
        arrival=arrival, id=rid, app_index=app, ingress=ingress,
        demand=demand, duration=duration,
    )


def _result_from_decisions(decisions, num_slots=10, preemptions=()):
    return SimulationResult(
        algorithm_name="X",
        num_slots=num_slots,
        decisions=decisions,
        preemptions=list(preemptions),
        requested_demand=np.zeros(num_slots),
        allocated_demand=np.zeros(num_slots),
        resource_cost=np.ones(num_slots),
        runtime_seconds=0.0,
    )


class TestSlotSimulator:
    def test_every_request_gets_a_decision(self, line_substrate, chain_app):
        quickg = make_quickg(line_substrate, [chain_app])
        requests = [_request(i, arrival=i % 5) for i in range(20)]
        result = simulate(quickg, requests, 10)
        assert len(result.decisions) == 20
        assert set(result.decision_by_id) == {r.id for r in requests}

    def test_departures_release_capacity(self, line_substrate, chain_app):
        quickg = make_quickg(line_substrate, [chain_app])
        # One request active slots 0-2; allocated demand must drop at 3.
        requests = [_request(1, arrival=0, duration=3)]
        result = simulate(quickg, requests, 6)
        assert result.allocated_demand[0] == pytest.approx(1.0)
        assert result.allocated_demand[2] == pytest.approx(1.0)
        assert result.allocated_demand[3] == pytest.approx(0.0)

    def test_requested_demand_series(self, line_substrate, chain_app):
        quickg = make_quickg(line_substrate, [chain_app])
        requests = [
            _request(1, arrival=2, demand=4.0),
            _request(2, arrival=2, demand=1.0),
        ]
        result = simulate(quickg, requests, 5)
        assert result.requested_demand[2] == pytest.approx(5.0)
        assert result.requested_demand[1] == 0.0

    def test_arrival_beyond_horizon_rejected(self, line_substrate, chain_app):
        quickg = make_quickg(line_substrate, [chain_app])
        with pytest.raises(SimulationError, match="beyond"):
            SlotSimulator(quickg, [_request(1, arrival=99)], 10)

    def test_batch_algorithm_drives_run_slot(self, line_substrate, chain_app):
        slotoff = SlotOffAlgorithm(line_substrate, [chain_app])
        requests = [_request(i, arrival=i % 3) for i in range(6)]
        result = simulate(slotoff, requests, 5)
        assert len(result.decisions) == 6
        assert result.algorithm_name == "SLOTOFF"

    def test_runtime_is_recorded(self, line_substrate, chain_app):
        quickg = make_quickg(line_substrate, [chain_app])
        result = simulate(quickg, [_request(1)], 2)
        assert result.runtime_seconds > 0

    def test_on_slot_hook_called_after_departures(self, line_substrate, chain_app):
        """The optional on_slot hook fires once per slot, after releases."""
        calls: list[tuple[str, int]] = []
        quickg = make_quickg(line_substrate, [chain_app])
        original_release = quickg.release

        def tracking_release(request):
            calls.append(("release", request.id))
            original_release(request)

        quickg.release = tracking_release
        quickg.on_slot = lambda t: calls.append(("slot", t))

        requests = [_request(1, arrival=0, duration=2)]
        simulate(quickg, requests, 4)
        slots = [c for c in calls if c[0] == "slot"]
        assert slots == [("slot", 0), ("slot", 1), ("slot", 2), ("slot", 3)]
        # Request 1 departs at slot 2: its release precedes that slot hook.
        assert calls.index(("release", 1)) < calls.index(("slot", 2))


class TestSimulationResult:
    def test_derived_fields_computed_when_omitted(self):
        requests = [_request(1), _request(2)]
        decisions = [
            Decision(request=requests[0], accepted=True),
            Decision(request=requests[1], accepted=False),
        ]
        result = _result_from_decisions(
            decisions, preemptions=[(requests[0], 3)]
        )
        assert result.decision_by_id == {1: decisions[0], 2: decisions[1]}
        assert result.preempted_ids == {1}
        assert result.num_requests == 2
        assert result.disruptions == []
        assert result.disrupted_ids == set()

    def test_explicit_empty_derived_fields_are_kept(self):
        """Passing empty containers (or 0) must not trigger recomputation —
        the falsy values are legitimate, not 'please derive' sentinels."""
        requests = [_request(1)]
        decisions = [Decision(request=requests[0], accepted=True)]
        result = SimulationResult(
            algorithm_name="X",
            num_slots=4,
            decisions=decisions,
            preemptions=[(requests[0], 2)],
            requested_demand=np.zeros(4),
            allocated_demand=np.zeros(4),
            resource_cost=np.zeros(4),
            runtime_seconds=0.0,
            decision_by_id={},
            preempted_ids=set(),
            num_requests=0,
            disruptions=[],
            disrupted_ids=set(),
        )
        assert result.decision_by_id == {}
        assert result.preempted_ids == set()
        assert result.num_requests == 0
        assert result.disrupted_ids == set()

    def test_throughput_zero_on_zero_runtime(self):
        result = _result_from_decisions(
            [Decision(request=_request(1), accepted=True)]
        )
        assert result.runtime_seconds == 0.0
        assert result.slots_per_second == 0.0
        assert result.requests_per_second == 0.0

    def test_throughput_on_real_runtime(self):
        result = _result_from_decisions(
            [Decision(request=_request(i), accepted=True) for i in range(4)]
        )
        result.runtime_seconds = 0.5
        assert result.slots_per_second == pytest.approx(20.0)
        assert result.requests_per_second == pytest.approx(8.0)


class TestRejectionRate:
    def test_counts_rejections_and_preemptions(self):
        requests = [_request(i) for i in range(4)]
        decisions = [
            Decision(request=requests[0], accepted=True),
            Decision(request=requests[1], accepted=False),
            Decision(request=requests[2], accepted=True),
            Decision(request=requests[3], accepted=True),
        ]
        result = _result_from_decisions(
            decisions, preemptions=[(requests[2], 1)]
        )
        # 1 rejected + 1 preempted of 4.
        assert rejection_rate(result) == pytest.approx(0.5)

    def test_window_filters_by_arrival(self):
        decisions = [
            Decision(request=_request(1, arrival=1), accepted=False),
            Decision(request=_request(2, arrival=8), accepted=True),
        ]
        result = _result_from_decisions(decisions)
        assert rejection_rate(result, (0, 5)) == pytest.approx(1.0)
        assert rejection_rate(result, (5, 10)) == pytest.approx(0.0)

    def test_empty_window_is_zero(self):
        assert rejection_rate(_result_from_decisions([])) == 0.0

    def test_invalid_window_raises(self):
        result = _result_from_decisions([])
        with pytest.raises(SimulationError):
            rejection_rate(result, (5, 2))


class TestCostBreakdown:
    def test_resource_plus_rejection(self, line_substrate, chain_app):
        accepted = _request(1, arrival=0)
        rejected = _request(2, arrival=0, demand=2.0, duration=4)
        decisions = [
            Decision(request=accepted, accepted=True),
            Decision(request=rejected, accepted=False),
        ]
        result = _result_from_decisions(decisions, num_slots=10)
        costs = cost_breakdown(result, line_substrate, [chain_app], (0, 10))
        assert costs.resource == pytest.approx(10.0)  # 1.0 per slot stub
        # ψ = 20·50 + 10·1·3 = 1030; Ψ = ψ·d·T = 1030·2·4.
        assert costs.rejection == pytest.approx(1030.0 * 8.0)
        assert costs.total == costs.resource + costs.rejection


class TestBalanceIndex:
    def test_perfectly_balanced(self):
        decisions = []
        for node in ("a", "b"):
            for app in (0, 1):
                request = _request(
                    len(decisions), ingress=node, app=app
                )
                decisions.append(Decision(request=request, accepted=False))
        result = _result_from_decisions(decisions)
        assert balance_index(result, num_apps=2) == pytest.approx(1.0)

    def test_fully_unbalanced(self):
        # All rejections concentrated on one of two apps → Jain = 1/2.
        decisions = [
            Decision(request=_request(i, ingress="a", app=0), accepted=False)
            for i in range(5)
        ]
        result = _result_from_decisions(decisions)
        assert balance_index(result, num_apps=2) == pytest.approx(0.5)

    def test_no_rejections_is_perfect(self):
        decisions = [
            Decision(request=_request(i), accepted=True) for i in range(3)
        ]
        result = _result_from_decisions(decisions)
        assert balance_index(result, num_apps=4) == pytest.approx(1.0)

    def test_empty_result(self):
        assert balance_index(_result_from_decisions([]), 4) == 1.0


class TestDemandSeries:
    def test_window_slicing(self):
        result = _result_from_decisions([], num_slots=10)
        result.requested_demand[:] = np.arange(10)
        series = demand_series(result, (3, 6))
        assert series["slots"].tolist() == [3, 4, 5]
        assert series["requested"].tolist() == [3.0, 4.0, 5.0]


class TestNodeTimeline:
    def test_statuses_and_guarantee(self, line_substrate, chain_app):
        requests = [
            _request(1, arrival=0),
            _request(2, arrival=1),
            _request(3, arrival=2),
            _request(4, arrival=3, ingress="edge-b"),
        ]
        decisions = [
            Decision(request=requests[0], accepted=True, planned=True),
            Decision(request=requests[1], accepted=True, borrowed=True),
            Decision(request=requests[2], accepted=False),
            Decision(request=requests[3], accepted=True, planned=True),
        ]
        result = _result_from_decisions(
            decisions, preemptions=[(requests[1], 2)]
        )
        timeline = NodeTimeline.collect(result, Plan(), "edge-a", num_apps=1)
        counts = timeline.counts(0)
        assert counts == {"guaranteed": 1, "preempted": 1, "rejected": 1}
        # edge-b requests excluded; empty plan → zero guarantee.
        assert timeline.guaranteed_demand[0] == 0.0
        # Active demand counts accepted requests only.
        assert timeline.active_demand[0][0] == pytest.approx(1.0)
        assert timeline.active_demand[0][1] == pytest.approx(2.0)

    def test_preempted_demand_truncated_at_preemption_slot(self):
        # Accepted at slot 0 with duration 8, preempted at slot 3: its
        # demand occupies [0, 3) only — the substrate released it there.
        victim = _request(1, arrival=0, demand=5.0, duration=8)
        survivor = _request(2, arrival=1, demand=2.0, duration=8)
        decisions = [
            Decision(request=victim, accepted=True),
            Decision(request=survivor, accepted=True, planned=True),
        ]
        result = _result_from_decisions(
            decisions, preemptions=[(victim, 3)]
        )
        timeline = NodeTimeline.collect(result, Plan(), "edge-a", num_apps=1)
        active = timeline.active_demand[0]
        np.testing.assert_allclose(active[:3], [5.0, 7.0, 7.0])
        # After the preemption slot only the survivor remains active.
        np.testing.assert_allclose(active[3:9], [2.0] * 6)

    def test_preemption_beyond_departure_is_harmless(self):
        request = _request(1, arrival=0, demand=4.0, duration=2)
        decisions = [Decision(request=request, accepted=True)]
        result = _result_from_decisions(
            decisions, preemptions=[(request, 5)]
        )
        timeline = NodeTimeline.collect(result, Plan(), "edge-a", num_apps=1)
        np.testing.assert_allclose(
            timeline.active_demand[0][:3], [4.0, 4.0, 0.0]
        )


class TestRunner:
    def test_confidence_interval_basics(self):
        interval = confidence_interval([1.0, 2.0, 3.0])
        assert interval.mean == pytest.approx(2.0)
        assert interval.low < 2.0 < interval.high
        assert interval.count == 3

    def test_single_sample_has_zero_width(self):
        interval = confidence_interval([5.0])
        assert interval.half_width == 0.0

    def test_empty_sample_raises(self):
        with pytest.raises(SimulationError):
            confidence_interval([])

    def test_overlap(self):
        a = confidence_interval([1.0, 2.0, 3.0])
        b = confidence_interval([2.0, 3.0, 4.0])
        c = confidence_interval([100.0, 101.0])
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_repeat_runs_aggregates_metrics(self):
        def run(seed: int):
            return {"metric": float(seed), "constant": 1.0}

        summary = repeat_runs(run, repetitions=5, base_seed=10)
        assert summary["metric"].mean == pytest.approx(12.0)
        assert summary["constant"].half_width == 0.0

    def test_repeat_runs_rejects_inconsistent_keys(self):
        def run(seed: int):
            return {"a": 1.0} if seed == 0 else {"b": 1.0}

        with pytest.raises(SimulationError, match="inconsistent"):
            repeat_runs(run, repetitions=2)

    def test_repeat_runs_needs_repetitions(self):
        with pytest.raises(SimulationError):
            repeat_runs(lambda s: {}, repetitions=0)
