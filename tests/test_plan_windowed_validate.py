"""Tests for the extensions: plan validation and time-windowed plans."""

import pytest

from repro.apps.application import ROOT_ID
from repro.errors import PlanError
from repro.plan.pattern import ClassPlan, EmbeddingPattern, Plan
from repro.plan.validate import validate_plan
from repro.plan.windowed import (
    PlanSchedule,
    WindowedOliveAlgorithm,
    compute_windowed_plans,
)
from repro.sim.engine import simulate
from repro.sim.metrics import rejection_rate
from repro.stats.aggregate import AggregateRequest
from repro.workload.request import Request
from tests.conftest import make_line_substrate


def _class_plan(ingress="edge-a", demand=10.0, host="transport", weight=1.0,
                path=(("edge-a", "transport"),)):
    aggregate = AggregateRequest(app_index=0, ingress=ingress, demand=demand)
    pattern = EmbeddingPattern(
        node_map={ROOT_ID: ingress, 1: host, 2: host},
        link_paths={(0, 1): tuple(path), (1, 2): ()},
        weight=weight,
    )
    return ClassPlan(aggregate=aggregate, patterns=[pattern],
                     rejected_fraction=1.0 - weight)


class TestValidatePlan:
    def test_valid_plan_passes(self, line_substrate, chain_app):
        plan = Plan(classes={(0, "edge-a"): _class_plan()})
        result = validate_plan(plan, line_substrate, [chain_app])
        assert result.ok
        # 10 units × 2 VNFs × β10 = 200 planned on transport.
        assert result.node_load["transport"] == pytest.approx(200.0)

    def test_root_not_at_ingress_detected(self, line_substrate, chain_app):
        class_plan = _class_plan()
        class_plan.patterns[0].node_map[ROOT_ID] = "edge-b"
        plan = Plan(classes={(0, "edge-a"): class_plan})
        result = validate_plan(plan, line_substrate, [chain_app])
        assert not result.ok
        assert any("root not pinned" in v for v in result.violations)

    def test_discontiguous_path_detected(self, line_substrate, chain_app):
        class_plan = _class_plan(path=(("core", "edge-b"),))
        plan = Plan(classes={(0, "edge-a"): class_plan})
        result = validate_plan(plan, line_substrate, [chain_app])
        assert any("discontiguous" in v for v in result.violations)

    def test_wrong_path_endpoint_detected(self, line_substrate, chain_app):
        # Path continues past the host to 'core'.
        class_plan = _class_plan(
            path=(("edge-a", "transport"), ("core", "transport"))
        )
        plan = Plan(classes={(0, "edge-a"): class_plan})
        result = validate_plan(plan, line_substrate, [chain_app])
        assert any("ends at" in v for v in result.violations)

    def test_capacity_overrun_detected(self, line_substrate, chain_app):
        # 1000 demand units × 20 β = 20000 ≫ transport capacity 3000.
        plan = Plan(classes={(0, "edge-a"): _class_plan(demand=1000.0)})
        result = validate_plan(plan, line_substrate, [chain_app])
        assert any("exceeds" in v for v in result.violations)

    def test_allocated_fraction_above_one_detected(self, line_substrate, chain_app):
        class_plan = _class_plan(weight=0.9)
        class_plan.patterns.append(
            EmbeddingPattern(
                node_map=dict(class_plan.patterns[0].node_map),
                link_paths=dict(class_plan.patterns[0].link_paths),
                weight=0.5,
            )
        )
        plan = Plan(classes={(0, "edge-a"): class_plan})
        result = validate_plan(plan, line_substrate, [chain_app])
        assert any("exceeds 1" in v for v in result.violations)

    def test_unknown_ingress_detected(self, line_substrate, chain_app):
        plan = Plan(classes={(0, "mars"): _class_plan(ingress="mars")})
        result = validate_plan(plan, line_substrate, [chain_app])
        assert any("unknown ingress" in v for v in result.violations)

    def test_computed_plan_validates(self, test_scenario):
        result = validate_plan(
            test_scenario.plan,
            test_scenario.substrate,
            test_scenario.apps,
            test_scenario.efficiency,
        )
        assert result.ok, result.violations[:5]


class TestPlanSchedule:
    def test_lookup(self):
        plans = [Plan(), Plan(), Plan()]
        schedule = PlanSchedule(starts=[0, 10, 20], plans=plans)
        assert schedule.plan_for_slot(0) is plans[0]
        assert schedule.plan_for_slot(9) is plans[0]
        assert schedule.plan_for_slot(10) is plans[1]
        assert schedule.plan_for_slot(99) is plans[2]

    def test_validation(self):
        with pytest.raises(PlanError):
            PlanSchedule(starts=[0], plans=[])
        with pytest.raises(PlanError):
            PlanSchedule(starts=[5], plans=[Plan()])
        with pytest.raises(PlanError):
            PlanSchedule(starts=[0, 0], plans=[Plan(), Plan()])


class TestWindowedPlans:
    def test_windows_cover_online_horizon(self, test_scenario):
        config = test_scenario.config
        schedule = compute_windowed_plans(
            test_scenario.substrate,
            test_scenario.apps,
            test_scenario.trace.history_requests(),
            config.history_slots,
            config.online_slots,
            num_windows=3,
        )
        assert schedule.num_windows == 3
        assert schedule.starts[0] == 0
        assert schedule.starts[-1] < config.online_slots
        for plan in schedule.plans:
            assert not plan.is_empty

    def test_rejects_bad_window_counts(self, test_scenario):
        config = test_scenario.config
        with pytest.raises(PlanError):
            compute_windowed_plans(
                test_scenario.substrate, test_scenario.apps, [],
                config.history_slots, config.online_slots, num_windows=0,
            )

    def test_windowed_olive_runs_and_switches(self, test_scenario):
        config = test_scenario.config
        schedule = compute_windowed_plans(
            test_scenario.substrate,
            test_scenario.apps,
            test_scenario.trace.history_requests(),
            config.history_slots,
            config.online_slots,
            num_windows=2,
        )
        algorithm = WindowedOliveAlgorithm(
            test_scenario.substrate,
            test_scenario.apps,
            schedule,
            test_scenario.efficiency,
        )
        result = simulate(
            algorithm, test_scenario.online_requests(), config.online_slots
        )
        assert algorithm.plan is schedule.plans[-1]  # switched
        assert 0.0 <= rejection_rate(result) < 1.0


class TestCyclicSchedule:
    def test_cyclic_lookup_wraps(self):
        plans = [Plan(), Plan()]
        schedule = PlanSchedule(starts=[0, 10], plans=plans, period=20)
        assert schedule.plan_for_slot(5) is plans[0]
        assert schedule.plan_for_slot(15) is plans[1]
        assert schedule.plan_for_slot(25) is plans[0]  # wrapped
        assert schedule.plan_for_slot(35) is plans[1]

    def test_period_must_cover_windows(self):
        with pytest.raises(PlanError):
            PlanSchedule(starts=[0, 10], plans=[Plan(), Plan()], period=10)

    def test_phase_sliced_windows_capture_diurnal_structure(
        self, line_substrate, chain_app
    ):
        """Peak-phase windows must plan for more demand than trough ones."""
        from repro.workload.diurnal import generate_diurnal_trace
        from repro.workload.trace import TraceConfig
        from repro.utils.rng import make_rng

        config = TraceConfig(
            history_slots=240, online_slots=30, arrivals_per_node=6.0,
            demand_mean=1.0, demand_std=0.2,
        )
        trace = generate_diurnal_trace(
            line_substrate, [chain_app], config, make_rng(0),
            amplitude=0.8, period=80,
        )
        schedule = compute_windowed_plans(
            line_substrate, [chain_app], trace.history_requests(),
            config.history_slots, config.online_slots,
            num_windows=2, cycle_period=80,
        )
        assert schedule.period == 80
        guarantees = [p.total_guaranteed_demand() for p in schedule.plans]
        # sin peaks in the first half-cycle, troughs in the second.
        assert guarantees[0] > 1.5 * guarantees[1]

    def test_cycle_period_validation(self, line_substrate, chain_app):
        with pytest.raises(PlanError, match="cycle period"):
            compute_windowed_plans(
                line_substrate, [chain_app], [], 100, 20,
                num_windows=4, cycle_period=2,
            )


class TestSwitchPlanSemantics:
    def test_planned_allocations_downgrade_on_switch(self, chain_app):
        from repro.core.olive import OliveAlgorithm

        substrate = make_line_substrate()
        plan = Plan(classes={(0, "edge-a"): _class_plan()})
        olive = OliveAlgorithm(substrate, [chain_app], plan)
        request = Request(
            arrival=0, id=1, app_index=0, ingress="edge-a",
            demand=2.0, duration=5,
        )
        decision = olive.process(request)
        assert decision.planned
        olive.switch_plan(Plan(classes={(0, "edge-a"): _class_plan()}))
        # The active allocation survives but is now borrowed/preemptible.
        assert not olive.active[1].planned
        # New plan's residual is untouched by the old allocation...
        assert olive.plan_residual.guaranteed_remaining(
            (0, "edge-a")
        ) == pytest.approx(10.0)
        # ...and releasing the request must not corrupt it either.
        olive.release(request)
        assert olive.plan_residual.guaranteed_remaining(
            (0, "edge-a")
        ) == pytest.approx(10.0)

    def test_borrowing_can_be_disabled(self, chain_app):
        from repro.core.olive import OliveAlgorithm

        substrate = make_line_substrate()
        plan = Plan(classes={(0, "edge-a"): _class_plan(demand=5.0)})
        olive = OliveAlgorithm(
            substrate, [chain_app], plan, enable_borrowing=False
        )
        first = olive.process(
            Request(arrival=0, id=1, app_index=0, ingress="edge-a",
                    demand=4.0, duration=5)
        )
        assert first.planned
        # Pattern residual is 1 < 3: full fit impossible; with borrowing
        # off the request must go greedy instead of borrowed.
        second = olive.process(
            Request(arrival=0, id=2, app_index=0, ingress="edge-a",
                    demand=3.0, duration=5)
        )
        assert second.accepted
        assert not second.borrowed
        assert second.via_greedy
