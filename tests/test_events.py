"""Unit tests for the dynamic-event subsystem (repro.scenarios.events).

Covers the residual-state capacity mutations, schedule assembly and
workload transforms, the preempt/reroute disruption policies on a
hand-computable substrate, SLOTOFF's substrate-override handling, the
registered profiles, and the ``Experiment.events`` facade hook. The
fast-vs-reference bit-identity of event runs lives in
``test_event_oracle.py``; metamorphic properties in
``test_metamorphic.py``.
"""

from __future__ import annotations

import pytest

from repro.api import Experiment, resolve_events, run_single
from repro.baselines.quickg import make_quickg
from repro.baselines.slotoff import SlotOffAlgorithm
from repro.core.residual import ResidualState
from repro.errors import SimulationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import build_scenario
from repro.registry import event_profile_registry
from repro.scenarios.events import (
    CapacityDegradation,
    EventSchedule,
    FlashCrowd,
    IngressMigration,
    LinkFailure,
    LinkRecovery,
    NodeDrain,
    NodeRestore,
    capacity_invariant_gap,
)
from repro.sim.engine import simulate
from repro.sim.metrics import availability, disruption_rate, mean_recovery_time
from repro.utils.rng import make_rng
from repro.workload.request import Request
from tests.conftest import make_line_substrate, make_two_vnf_chain


class TestResidualCapacityMutation:
    def test_nominal_capacities_survive_mutation(self, line_substrate):
        residual = ResidualState(line_substrate)
        residual.set_node_capacity("core", 10.0)
        residual.set_link_capacity(("edge-a", "transport"), 1.0)
        assert residual.nominal_node_capacity("core") == 9000.0
        assert residual.nominal_link_capacity(("edge-a", "transport")) == 500.0
        residual.set_node_capacity(
            "core", residual.nominal_node_capacity("core")
        )
        assert residual.nodes["core"] == 9000.0

    def test_link_capacity_cut_shifts_residual_and_logs(self, line_substrate):
        residual = ResidualState(line_substrate)
        link = ("edge-a", "transport")
        rev_before = residual.link_rev
        assert residual.set_link_capacity(link, 100.0) is True
        assert residual.links[link] == 100.0
        assert residual.link_rev == rev_before + 1  # dirty log fed
        # Restoring goes through the nominal capacity helper.
        assert residual.set_link_capacity(
            link, residual.nominal_link_capacity(link)
        )
        assert residual.links[link] == 500.0

    def test_node_capacity_cut_below_usage_goes_negative(self, line_substrate):
        residual = ResidualState(line_substrate)
        residual.nodes["core"] = 100.0  # simulate 8900 CU allocated
        residual.set_node_capacity("core", 1000.0)
        assert residual.nodes["core"] == pytest.approx(100.0 - 8000.0)
        nodes, links = residual.overloaded_elements()
        assert nodes == ["core"] and links == []

    def test_noop_change_reports_false(self, line_substrate):
        residual = ResidualState(line_substrate)
        rev = residual.link_rev
        assert residual.set_link_capacity(("edge-a", "transport"), 500.0) is False
        assert residual.set_node_capacity("core", 9000.0) is False
        assert residual.link_rev == rev

    def test_unknown_element_raises(self, line_substrate):
        residual = ResidualState(line_substrate)
        with pytest.raises(KeyError):
            residual.set_node_capacity("nowhere", 1.0)


class TestEventSchedule:
    def test_events_sorted_by_slot_stably(self):
        schedule = EventSchedule(
            [
                LinkRecovery(slot=5, link=("a", "b")),
                LinkFailure(slot=2, link=("a", "b")),
                LinkFailure(slot=5, link=("c", "d")),
            ]
        )
        assert [e.slot for e in schedule.events] == [2, 5, 5]
        # Same-slot order preserves insertion order (recovery before the
        # second failure).
        assert isinstance(schedule.events[1], LinkRecovery)
        assert schedule.capacity_events_at(5) == schedule.events[1:]
        assert schedule.capacity_events_at(3) == ()

    def test_unknown_policy_rejected(self):
        with pytest.raises(SimulationError, match="disruption policy"):
            EventSchedule([], policy="panic")

    def test_negative_slot_rejected(self):
        with pytest.raises(SimulationError, match="before slot 0"):
            EventSchedule([LinkFailure(slot=-1, link=("a", "b"))])

    def test_with_policy_copies(self):
        schedule = EventSchedule(
            [LinkFailure(slot=1, link=("a", "b"))], policy="preempt"
        )
        rerouting = schedule.with_policy("reroute")
        assert rerouting.policy == "reroute"
        assert schedule.policy == "preempt"
        assert rerouting.events == schedule.events

    def test_validate_rejects_unknown_elements(self, line_substrate):
        schedule = EventSchedule([LinkFailure(slot=1, link=("no", "pe"))])
        with pytest.raises(SimulationError, match="unknown link"):
            schedule.validate(line_substrate)
        # Recovery/drain events dereference the substrate for the nominal
        # capacity; the promised SimulationError (not a raw KeyError) must
        # surface for them too.
        for bad in (
            LinkRecovery(slot=1, link=("no", "pe")),
            NodeDrain(slot=1, node="moon", fraction=0.5),
            NodeRestore(slot=1, node="moon"),
            CapacityDegradation(slot=1, fraction=0.5, links=(("no", "pe"),)),
        ):
            with pytest.raises(SimulationError, match="unknown element"):
                EventSchedule([bad]).validate(line_substrate)
        schedule = EventSchedule(
            [IngressMigration(slot=1, source="edge-a", target="moon", until=5)]
        )
        with pytest.raises(SimulationError, match="unknown node"):
            schedule.validate(line_substrate)

    def test_validate_rejects_bad_flash_crowd_requests(self, line_substrate):
        bad_ingress = EventSchedule(
            [FlashCrowd(slot=1, requests=(
                Request(arrival=1, id=1, app_index=0, ingress="moon",
                        demand=1.0, duration=1),
            ))]
        )
        with pytest.raises(SimulationError, match="unknown node 'moon'"):
            bad_ingress.validate(line_substrate)
        bad_app = EventSchedule(
            [FlashCrowd(slot=1, requests=(
                Request(arrival=1, id=1, app_index=5, ingress="edge-a",
                        demand=1.0, duration=1),
            ))]
        )
        bad_app.validate(line_substrate)  # without num_apps: ingress only
        with pytest.raises(SimulationError, match="app_index 5"):
            bad_app.validate(line_substrate, num_apps=2)

    def test_transform_rewrites_migrated_ingresses(self):
        requests = [
            Request(arrival=t, id=t, app_index=0, ingress="edge-a",
                    demand=1.0, duration=2)
            for t in range(6)
        ]
        schedule = EventSchedule(
            [IngressMigration(slot=2, source="edge-a", target="edge-b",
                              until=4)]
        )
        moved = schedule.transform_requests(requests)
        assert [r.ingress for r in moved] == [
            "edge-a", "edge-a", "edge-b", "edge-b", "edge-a", "edge-a"
        ]
        # Untouched fields survive the rewrite.
        assert [r.id for r in moved] == [r.id for r in requests]

    def test_transform_merges_flash_crowd_sorted(self):
        base = [
            Request(arrival=3, id=1, app_index=0, ingress="edge-a",
                    demand=1.0, duration=1)
        ]
        extra = (
            Request(arrival=1, id=1_000_000_000, app_index=0,
                    ingress="edge-b", demand=2.0, duration=1),
        )
        schedule = EventSchedule([FlashCrowd(slot=1, requests=extra)])
        merged = schedule.transform_requests(base)
        assert [r.arrival for r in merged] == [1, 3]
        assert merged[0].id == 1_000_000_000

    def test_transform_is_memoized_per_input_list(self):
        base = [
            Request(arrival=2, id=1, app_index=0, ingress="edge-a",
                    demand=1.0, duration=1)
        ]
        schedule = EventSchedule(
            [IngressMigration(slot=0, source="edge-a", target="edge-b",
                              until=9)]
        )
        first = schedule.transform_requests(base)
        assert schedule.transform_requests(base) is first  # same input list
        assert schedule.transform_requests(list(base)) is not first

    def test_empty_schedule_is_empty(self):
        assert EventSchedule([]).is_empty
        assert not EventSchedule([NodeRestore(slot=0, node="x")]).is_empty


class TestComposeAndShift:
    """The scenario-composition operator (merge / shift / overlay)."""

    def test_compose_merges_and_sorts(self):
        drain = EventSchedule(
            [NodeDrain(slot=2, node="core", fraction=0.5),
             NodeRestore(slot=8, node="core")],
            name="drain",
        )
        flap = EventSchedule(
            [LinkFailure(slot=4, link=("a", "b")),
             LinkRecovery(slot=6, link=("a", "b"))],
            name="flap",
        )
        combined = drain.compose(flap)
        assert [e.slot for e in combined.events] == [2, 4, 6, 8]
        assert combined.name == "drain+flap"
        # Operands are untouched.
        assert len(drain) == 2 and len(flap) == 2

    def test_same_slot_ordering_is_operand_order(self):
        """fail+recover in one slot: composition order decides the outcome."""
        link = ("edge-a", "transport")
        fail = EventSchedule([LinkFailure(slot=3, link=link)])
        recover = EventSchedule([LinkRecovery(slot=3, link=link)])

        def final_capacity(schedule):
            residual = ResidualState(make_line_substrate())
            from repro.scenarios.events import apply_capacity_events

            apply_capacity_events(residual, schedule.capacity_events_at(3))
            return residual.links[link]

        # fail → recover: atomically a no-op, link ends at nominal.
        assert final_capacity(fail.compose(recover)) == 500.0
        # recover → fail: the failure lands last, link ends down.
        assert final_capacity(recover.compose(fail)) == 0.0

    def test_compose_is_associative_in_events(self):
        a = EventSchedule([NodeDrain(slot=1, node="x", fraction=0.5)])
        b = EventSchedule([LinkFailure(slot=1, link=("a", "b"))])
        c = EventSchedule([NodeRestore(slot=1, node="x")])
        assert a.compose(b).compose(c).events == a.compose(b, c).events

    def test_compose_policy_conflict_fails_fast(self):
        preempting = EventSchedule(
            [LinkFailure(slot=1, link=("a", "b"))], policy="preempt"
        )
        rerouting = EventSchedule(
            [LinkFailure(slot=2, link=("a", "b"))], policy="reroute"
        )
        with pytest.raises(SimulationError, match="disagree on disruption"):
            preempting.compose(rerouting)
        resolved = preempting.compose(rerouting, policy="reroute")
        assert resolved.policy == "reroute"

    def test_shifted_moves_all_event_shapes(self):
        burst = Request(arrival=2, id=1_000_000_000, app_index=0,
                        ingress="edge-b", demand=1.0, duration=2)
        schedule = EventSchedule(
            [
                LinkFailure(slot=1, link=("a", "b")),
                FlashCrowd(slot=2, requests=(burst,)),
                IngressMigration(slot=3, source="edge-a", target="edge-b",
                                 until=6),
            ],
            name="mix",
        )
        moved = schedule.shifted(10)
        assert [e.slot for e in moved.events] == [11, 12, 13]
        crowd = moved.events[1]
        assert crowd.requests[0].arrival == 12
        assert crowd.requests[0].id == burst.id  # identity preserved
        migration = moved.events[2]
        assert migration.until == 16
        assert moved.name == "mix@+10"
        assert moved.policy == schedule.policy

    def test_shifted_zero_is_identity(self):
        schedule = EventSchedule([LinkFailure(slot=1, link=("a", "b"))])
        assert schedule.shifted(0) is schedule

    def test_shifted_rejects_landing_before_slot_zero(self):
        schedule = EventSchedule([LinkFailure(slot=1, link=("a", "b"))])
        assert schedule.shifted(-1).events[0].slot == 0
        with pytest.raises(SimulationError, match="before slot 0"):
            schedule.shifted(-2)

    def test_flash_crowd_during_drain_through_the_engine(self):
        """The motivating overlay: a flash crowd hits mid-maintenance."""
        substrate = make_line_substrate()
        apps = [make_two_vnf_chain()]
        drain = EventSchedule(
            [NodeDrain(slot=1, node="core", fraction=0.0),
             NodeRestore(slot=6, node="core")],
            name="maintenance",
        )
        crowd = EventSchedule(
            [FlashCrowd(slot=0, requests=(
                Request(arrival=2, id=1_000_000_000, app_index=0,
                        ingress="edge-a", demand=1.0, duration=2),
            ))],
            name="crowd",
        )
        composed = drain.compose(crowd.shifted(2))
        algorithm = make_quickg(substrate, apps)
        result = simulate(algorithm, [], 8, events=composed)
        assert result.num_events == 3
        # The injected request arrived (at the shifted slot 4) while the
        # core was drained — it must have been embedded off-core.
        decision = result.decisions[0]
        assert decision.request.arrival == 4
        assert decision.accepted
        assert "core" not in decision.embedding.node_map.values()

    def test_overlapping_degradations_on_one_link(self):
        """Each degradation sets fraction × *nominal* — they override, not
        stack, and the last same-slot event wins."""
        substrate = make_line_substrate()
        apps = [make_two_vnf_chain()]
        link = ("core", "transport")  # nominal 1500
        algorithm = make_quickg(substrate, apps)
        first = CapacityDegradation(slot=2, fraction=0.5, links=(link,))
        second = CapacityDegradation(slot=2, fraction=0.25, links=(link,))
        algorithm.apply_events(2, (first, second), "preempt")
        index = algorithm.residual.index.link_index[link]
        assert algorithm.residual.link_capacity[index] == 1500.0 * 0.25
        # A later re-degradation is also nominal-relative: 0.5 of 1500,
        # not 0.5 of the already-degraded 375.
        algorithm.apply_events(
            3,
            (CapacityDegradation(slot=3, fraction=0.5, links=(link,)),),
            "preempt",
        )
        assert algorithm.residual.link_capacity[index] == 750.0

    def test_recovery_without_failure_is_a_noop(self):
        """Restoring a healthy element changes nothing and disrupts
        nothing — no spurious disruption scan, no stranded requests."""
        substrate = make_line_substrate()
        apps = [make_two_vnf_chain()]
        algorithm = make_quickg(substrate, apps)
        request = Request(arrival=0, id=1, app_index=0, ingress="edge-a",
                          demand=1.0, duration=6)
        assert algorithm.process(request).accepted
        from repro.scenarios.events import apply_capacity_events

        events = (
            LinkRecovery(slot=2, link=("edge-a", "transport")),
            NodeRestore(slot=2, node="core"),
        )
        assert apply_capacity_events(algorithm.residual, events) is False
        dropped = algorithm.apply_events(2, events, "preempt")
        assert dropped == []
        assert request.id in algorithm.active
        assert capacity_invariant_gap(algorithm) == pytest.approx(0.0)


class TestDisruptionPolicies:
    """Hand-computable stranding on the 4-node line substrate."""

    def _embed_one(self, policy: str):
        substrate = make_line_substrate()
        apps = [make_two_vnf_chain()]  # node β=10 ×2, root link β=5
        algorithm = make_quickg(substrate, apps)
        request = Request(arrival=0, id=7, app_index=0, ingress="edge-a",
                          demand=1.0, duration=10)
        decision = algorithm.process(request)
        assert decision.accepted
        # Cheapest host is the core (cost 1/CU); the ingress path crosses
        # both line links with the root virtual link's load 5.
        assert decision.embedding.node_map[1] == "core"
        return substrate, algorithm, request

    def test_preempt_drops_stranded_request(self):
        substrate, algorithm, request = self._embed_one("preempt")
        events = (LinkFailure(slot=3, link=("edge-a", "transport")),)
        dropped = algorithm.apply_events(3, events, "preempt")
        assert dropped == [request]
        assert algorithm.active == {}
        # Allocation fully released: failed link residual settles at the
        # new (zero) capacity, and nothing is left stranded.
        assert algorithm.residual.links[("edge-a", "transport")] == 0.0
        assert algorithm.residual.overloaded_elements() == ([], [])
        assert capacity_invariant_gap(algorithm) == pytest.approx(0.0)

    def test_reroute_reembeds_on_the_ingress(self):
        substrate, algorithm, request = self._embed_one("reroute")
        events = (LinkFailure(slot=3, link=("edge-a", "transport")),)
        dropped = algorithm.apply_events(3, events, "reroute")
        # The only path out of edge-a is down, but collocating on the
        # ingress itself needs no path — the reroute must find it.
        assert dropped == []
        allocation = algorithm.active[request.id]
        assert allocation.embedding.node_map[1] == "edge-a"
        assert capacity_invariant_gap(algorithm) == pytest.approx(0.0)

    def test_reroute_drops_when_nothing_fits(self):
        substrate, algorithm, request = self._embed_one("reroute")
        events = (
            LinkFailure(slot=3, link=("edge-a", "transport")),
            NodeDrain(slot=3, node="edge-a", fraction=0.0),
        )
        dropped = algorithm.apply_events(3, events, "reroute")
        assert dropped == [request]
        assert algorithm.active == {}

    def test_recovery_restores_nominal_capacity(self):
        substrate, algorithm, request = self._embed_one("preempt")
        link = ("edge-a", "transport")
        algorithm.apply_events(3, (LinkFailure(slot=3, link=link),), "preempt")
        dropped = algorithm.apply_events(
            5, (LinkRecovery(slot=5, link=link),), "preempt"
        )
        assert dropped == []
        assert algorithm.residual.links[link] == 500.0

    def test_degradation_fraction_applies_to_nominal(self):
        substrate, algorithm, request = self._embed_one("preempt")
        link = ("core", "transport")  # nominal 1500, currently loaded 5
        events = (CapacityDegradation(slot=2, fraction=0.5, links=(link,)),)
        dropped = algorithm.apply_events(2, events, "preempt")
        assert dropped == []  # 750 still covers the 5 CU in flight
        assert algorithm.residual.link_capacity[
            algorithm.residual.index.link_index[link]
        ] == 750.0

    def test_repeated_failure_is_noop(self):
        substrate, algorithm, request = self._embed_one("preempt")
        link = ("edge-a", "transport")
        algorithm.apply_events(3, (LinkFailure(slot=3, link=link),), "preempt")
        dropped = algorithm.apply_events(
            4, (LinkFailure(slot=4, link=link),), "preempt"
        )
        assert dropped == []


class TestEngineIntegration:
    def test_capacity_events_need_algorithm_support(self, line_substrate):
        class Minimal:
            name = "MINIMAL"

            def release(self, request):
                pass

            def process(self, request):
                raise AssertionError("unreached")

            def active_demand(self):
                return 0.0

            def active_cost_per_slot(self):
                return 0.0

        schedule = EventSchedule(
            [LinkFailure(slot=0, link=("edge-a", "transport"))]
        )
        with pytest.raises(SimulationError, match="does not support"):
            simulate(Minimal(), [], 4, events=schedule)

    def test_workload_only_schedule_needs_no_support(self, line_substrate):
        """Flash crowds / migrations transform the trace, so even an
        algorithm without apply_events accepts them."""
        apps = [make_two_vnf_chain()]
        algorithm = make_quickg(line_substrate, apps)
        extra = (
            Request(arrival=1, id=1_000_000_000, app_index=0,
                    ingress="edge-b", demand=1.0, duration=2),
        )
        schedule = EventSchedule([FlashCrowd(slot=1, requests=extra)])
        result = simulate(algorithm, [], 4, events=schedule)
        assert result.num_requests == 1
        assert result.requested_demand[1] == 1.0
        # Workload events count into num_events even though they are
        # consumed before the slot loop.
        assert result.num_events == 1

    def test_engine_validates_schedule_against_substrate(self, line_substrate):
        """simulate() fails fast on a bad schedule — not mid-run KeyError."""
        apps = [make_two_vnf_chain()]
        algorithm = make_quickg(line_substrate, apps)
        schedule = EventSchedule([LinkFailure(slot=1, link=("no", "pe"))])
        with pytest.raises(SimulationError, match="unknown link"):
            simulate(algorithm, [], 4, events=schedule)

    def test_engine_rejects_events_beyond_horizon(self, line_substrate):
        """A capacity event at slot >= num_slots would silently never
        fire; the engine refuses it like an out-of-horizon request."""
        apps = [make_two_vnf_chain()]
        algorithm = make_quickg(line_substrate, apps)
        schedule = EventSchedule(
            [LinkFailure(slot=4, link=("edge-a", "transport"))]
        )
        with pytest.raises(SimulationError, match="beyond the 4-slot"):
            simulate(algorithm, [], 4, events=schedule)
        # The same schedule is fine on a longer horizon.
        result = simulate(algorithm, [], 5, events=schedule)
        assert result.num_events == 1
        # Workload events past the horizon are refused too — a migration
        # starting after the last slot would silently match nothing.
        migration = EventSchedule(
            [IngressMigration(slot=9, source="edge-a", target="edge-b",
                              until=12)]
        )
        with pytest.raises(SimulationError, match="beyond the 4-slot"):
            simulate(algorithm, [], 4, events=migration)

    def test_profile_windows_stay_inside_the_horizon(self):
        """Profiles schedule recoveries at their window's stop slot; every
        event must fall strictly inside the engine's slot loop, even at
        degenerate horizons."""
        for online_slots in (2, 3, 4, 6, 16):
            scenario = build_scenario(
                ExperimentConfig.test(
                    history_slots=40, online_slots=online_slots,
                    measure_start=1, measure_stop=max(2, online_slots - 1),
                ),
                seed=2,
                with_plan=False,
            )
            for name in event_profile_registry.names():
                schedule = event_profile_registry.create(
                    name, scenario, make_rng(3)
                )
                assert all(
                    e.slot < online_slots for e in schedule.events
                ), (name, online_slots)

    def test_slotoff_swaps_effective_substrate(self, line_substrate):
        apps = [make_two_vnf_chain()]
        algorithm = SlotOffAlgorithm(line_substrate, apps)
        link = ("edge-a", "transport")
        algorithm.apply_events(0, (LinkFailure(slot=0, link=link),), "preempt")
        assert algorithm.substrate.link_capacity(link) == 0.0
        assert line_substrate.link_capacity(link) == 500.0  # nominal untouched
        algorithm.apply_events(2, (LinkRecovery(slot=2, link=link),), "preempt")
        assert algorithm.substrate.link_capacity(link) == 500.0

    def test_disruptions_reported_in_result(self):
        substrate = make_line_substrate()
        apps = [make_two_vnf_chain()]
        algorithm = make_quickg(substrate, apps)
        request = Request(arrival=0, id=1, app_index=0, ingress="edge-a",
                          demand=1.0, duration=8)
        schedule = EventSchedule(
            [LinkFailure(slot=2, link=("edge-a", "transport")),
             NodeDrain(slot=2, node="edge-a", fraction=0.0)],
            policy="reroute",
        )
        result = simulate(algorithm, [request], 8, events=schedule)
        assert result.num_events == 2
        assert [(r.id, t) for r, t in result.disruptions] == [(1, 2)]
        assert result.disrupted_ids == {1}
        # Disruption counts as a preemption (the request never completed).
        assert result.preempted_ids == {1}
        assert disruption_rate(result) == 1.0
        assert availability(result) == pytest.approx(2 / 8)
        assert mean_recovery_time(result) == 6.0  # never re-accepts


class TestProfilesAndFacade:
    @pytest.fixture(scope="class")
    def tiny_scenario(self):
        return build_scenario(
            ExperimentConfig.test(
                history_slots=80, online_slots=16,
                measure_start=2, measure_stop=14,
            ),
            seed=0,
            with_plan=False,
        )

    def test_every_registered_profile_builds_valid_schedules(
        self, tiny_scenario
    ):
        for name in event_profile_registry.names():
            schedule = event_profile_registry.create(
                name, tiny_scenario, make_rng(5)
            )
            assert isinstance(schedule, EventSchedule)
            assert not schedule.is_empty, name
            schedule.validate(tiny_scenario.substrate)
            assert all(
                e.slot < tiny_scenario.config.online_slots
                for e in schedule.events
            ), name

    def test_profiles_are_seed_deterministic(self, tiny_scenario):
        for name in event_profile_registry.names():
            first = event_profile_registry.create(
                name, tiny_scenario, make_rng(9)
            )
            second = event_profile_registry.create(
                name, tiny_scenario, make_rng(9)
            )
            assert first.events == second.events, name

    def test_resolve_events_accepts_names_schedules_and_none(
        self, tiny_scenario
    ):
        assert resolve_events(None, tiny_scenario, 0) is None
        by_name = resolve_events("link-flap", tiny_scenario, 0, "preempt")
        assert by_name.policy == "preempt"
        schedule = EventSchedule([], policy="reroute")
        assert resolve_events(schedule, tiny_scenario, 0) is schedule
        with pytest.raises(SimulationError, match="event profile"):
            resolve_events("no-such-profile", tiny_scenario, 0)
        with pytest.raises(SimulationError, match="EventSchedule"):
            resolve_events(42, tiny_scenario, 0)

    def test_facade_events_run(self):
        config = ExperimentConfig.test(
            history_slots=80, online_slots=16,
            measure_start=2, measure_stop=14, utilization=1.4,
        )
        result = (
            Experiment(config)
            .algorithms("QUICKG")
            .events("blackout", policy="preempt")
            .run()
        )
        summary = result.summary
        assert "QUICKG:disrupted_rate" in summary
        assert "QUICKG:availability" in summary
        assert summary["QUICKG:availability"].mean <= 1.0

    def test_facade_rejects_unknown_profile(self):
        with pytest.raises(SimulationError, match="event profile"):
            Experiment(ExperimentConfig.test()).events("nope")

    def test_facade_rejects_unknown_policy(self):
        with pytest.raises(SimulationError, match="disruption policy"):
            Experiment(ExperimentConfig.test()).events(
                "link-flap", policy="rerotue"
            )

    def test_run_single_event_runs_differ_from_baseline(self):
        config = ExperimentConfig.test(
            history_slots=80, online_slots=16,
            measure_start=2, measure_stop=14, utilization=1.4,
        )
        _, baseline = run_single(config, 3, ("QUICKG",))
        _, disturbed = run_single(
            config, 3, ("QUICKG",), events="blackout", event_policy="preempt"
        )
        assert disturbed["QUICKG"].num_events > 0
        assert (
            disturbed["QUICKG"].decisions != baseline["QUICKG"].decisions
            or disturbed["QUICKG"].disruptions
        )
