"""Unit tests for repro.substrate: network model and topology builders."""

import pytest

from repro.errors import TopologyError
from repro.substrate.network import LinkAttrs, NodeAttrs, SubstrateNetwork, link_id
from repro.substrate.tiers import (
    TIER_LINK_CAPACITY,
    TIER_NODE_CAPACITY,
    Tier,
    link_tier,
)
from repro.substrate.topologies import (
    DEFAULT_SCALE_NODES,
    TOPOLOGY_BUILDERS,
    make_100n150e,
    make_5gen,
    make_caida_expander,
    make_citta_studi,
    make_iris,
    make_preferential,
    make_scaled_tiered,
    make_tiered_topology,
    make_topology,
    make_waxman,
    split_gpu_datacenters,
)


class TestTiers:
    def test_capacity_ratio_between_tiers_is_three(self):
        assert (
            TIER_NODE_CAPACITY[Tier.TRANSPORT]
            == 3 * TIER_NODE_CAPACITY[Tier.EDGE]
        )
        assert (
            TIER_NODE_CAPACITY[Tier.CORE]
            == 3 * TIER_NODE_CAPACITY[Tier.TRANSPORT]
        )
        assert (
            TIER_LINK_CAPACITY[Tier.TRANSPORT]
            == 3 * TIER_LINK_CAPACITY[Tier.EDGE]
        )

    def test_link_tier_is_edge_most(self):
        assert link_tier(Tier.EDGE, Tier.CORE) is Tier.EDGE
        assert link_tier(Tier.CORE, Tier.TRANSPORT) is Tier.TRANSPORT
        assert link_tier(Tier.CORE, Tier.CORE) is Tier.CORE


class TestNetworkModel:
    def test_link_id_is_sorted(self):
        assert link_id("b", "a") == ("a", "b")
        assert link_id("a", "b") == ("a", "b")

    def test_adjacency_is_symmetric(self, line_substrate):
        neighbors = {n for n, _ in line_substrate.adjacency["transport"]}
        assert neighbors == {"edge-a", "core"}

    def test_unknown_link_endpoint_raises(self):
        nodes = {"a": NodeAttrs(Tier.EDGE, 1.0, 1.0)}
        links = {("a", "b"): LinkAttrs(Tier.EDGE, 1.0, 1.0)}
        with pytest.raises(TopologyError, match="unknown node"):
            SubstrateNetwork(name="bad", nodes=nodes, links=links)

    def test_disconnected_substrate_raises(self):
        nodes = {
            "a": NodeAttrs(Tier.EDGE, 1.0, 1.0),
            "b": NodeAttrs(Tier.EDGE, 1.0, 1.0),
        }
        with pytest.raises(TopologyError, match="not connected"):
            SubstrateNetwork(name="split", nodes=nodes, links={})

    def test_tier_queries(self, line_substrate):
        assert set(line_substrate.edge_nodes) == {"edge-a", "edge-b"}
        assert line_substrate.transport_nodes == ["transport"]
        assert line_substrate.core_nodes == ["core"]

    def test_total_edge_capacity(self, line_substrate):
        assert line_substrate.total_edge_capacity() == 2000.0

    def test_scaled_capacities(self, line_substrate):
        doubled = line_substrate.scaled_capacities(2.0)
        assert doubled.node_capacity("edge-a") == 2000.0
        assert doubled.link_capacity(("edge-a", "transport")) == 1000.0
        # Original untouched.
        assert line_substrate.node_capacity("edge-a") == 1000.0

    def test_scaled_capacities_rejects_nonpositive(self, line_substrate):
        with pytest.raises(TopologyError):
            line_substrate.scaled_capacities(0.0)

    def test_with_node_attrs_rejects_unknown(self, line_substrate):
        with pytest.raises(TopologyError, match="unknown node"):
            line_substrate.with_node_attrs(
                {"nope": NodeAttrs(Tier.EDGE, 1.0, 1.0)}
            )

    def test_to_networkx_roundtrip(self, line_substrate):
        graph = line_substrate.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3
        assert graph.nodes["core"]["tier"] == "core"

    def test_max_costs(self, line_substrate):
        assert line_substrate.max_node_cost() == 50.0
        assert line_substrate.max_link_cost() == 1.0


#: Published Table II element counts.
PUBLISHED_COUNTS = {
    "Iris": (50, 64),
    "CittaStudi": (30, 35),
    "5GEN": (78, 100),
    "100N150E": (100, 150),
}


class TestTopologies:
    @pytest.mark.parametrize("name", sorted(PUBLISHED_COUNTS))
    def test_published_element_counts(self, name):
        substrate = make_topology(name)
        nodes, links = PUBLISHED_COUNTS[name]
        assert substrate.num_nodes == nodes
        assert substrate.num_links == links

    @pytest.mark.parametrize("name", sorted(PUBLISHED_COUNTS))
    def test_three_tiers_present(self, name):
        substrate = make_topology(name)
        assert substrate.edge_nodes
        assert substrate.transport_nodes
        assert substrate.core_nodes

    @pytest.mark.parametrize("builder", [make_iris, make_citta_studi, make_5gen, make_100n150e])
    def test_builders_are_deterministic(self, builder):
        a, b = builder(), builder()
        assert a.nodes == b.nodes
        assert set(a.links) == set(b.links)

    def test_iris_has_franklin_edge_node(self):
        iris = make_iris()
        assert "Franklin" in iris.nodes
        assert iris.nodes["Franklin"].tier is Tier.EDGE

    def test_node_costs_within_tier_band(self):
        iris = make_iris()
        for attrs in iris.nodes.values():
            mean = {Tier.EDGE: 50.0, Tier.TRANSPORT: 10.0, Tier.CORE: 1.0}[
                attrs.tier
            ]
            assert 0.5 * mean <= attrs.cost <= 1.5 * mean

    def test_unknown_topology_raises(self):
        with pytest.raises(TopologyError, match="unknown topology"):
            make_topology("Atlantis")

    def test_registry_covers_all_builders(self):
        assert set(TOPOLOGY_BUILDERS) >= set(PUBLISHED_COUNTS)
        assert set(TOPOLOGY_BUILDERS) - set(PUBLISHED_COUNTS) == {
            "tiered-x", "waxman", "prefattach", "caida-x",
        }

    def test_tiered_builder_rejects_too_few_links(self):
        with pytest.raises(TopologyError, match="at least"):
            make_tiered_topology("x", 2, 3, 5, num_links=5)

    def test_tiered_builder_rejects_bad_name_count(self):
        with pytest.raises(TopologyError, match="names"):
            make_tiered_topology(
                "x", 1, 2, 3, num_links=8, edge_names=("only-one",)
            )

    @pytest.mark.parametrize(
        "counts",
        [
            (0, 3, 5),   # empty core tier used to ZeroDivisionError
            (2, 0, 5),   # empty transport tier likewise
            (2, 3, 0),   # no edge nodes: malformed for trace generation
            (-1, 3, 5),  # negative counts built silently malformed graphs
            (2, -3, 5),
            (2, 3, -5),
        ],
    )
    def test_tiered_builder_rejects_nonpositive_tier_counts(self, counts):
        core, transport, edge = counts
        with pytest.raises(TopologyError, match="at least 1"):
            make_tiered_topology("x", core, transport, edge, num_links=50)

    def test_tiered_builder_rejects_nonpositive_link_count(self):
        with pytest.raises(TopologyError, match="num_links"):
            make_tiered_topology("x", 2, 3, 5, num_links=0)

    def test_tiered_builder_rejects_non_integer_counts(self):
        with pytest.raises(TopologyError, match="integer"):
            make_tiered_topology("x", 2.5, 3, 5, num_links=12)


SCALE_BUILDERS = {
    "tiered-x": make_scaled_tiered,
    "waxman": make_waxman,
    "prefattach": make_preferential,
    "caida-x": make_caida_expander,
}


class TestScaleFamilies:
    """Parameterized generated topologies (the fig_scale substrate tier)."""

    @pytest.mark.parametrize("family", sorted(SCALE_BUILDERS))
    def test_sized_metadata_and_default_size(self, family):
        from repro.registry import topology_registry

        assert topology_registry.get(family).metadata["sized"] is True
        substrate = make_topology(family)
        assert substrate.num_nodes == DEFAULT_SCALE_NODES

    @pytest.mark.parametrize("family", sorted(SCALE_BUILDERS))
    @pytest.mark.parametrize("size", [40, 200])
    def test_sized_name_builds_exact_node_count(self, family, size):
        substrate = make_topology(f"{family}:{size}")
        assert substrate.num_nodes == size
        # Connectivity is enforced by the SubstrateNetwork constructor;
        # all three tiers must exist for the trace/plan machinery.
        assert substrate.edge_nodes
        assert substrate.transport_nodes
        assert substrate.core_nodes

    @pytest.mark.parametrize("family", sorted(SCALE_BUILDERS))
    def test_builders_are_deterministic(self, family):
        a = make_topology(f"{family}:64")
        b = make_topology(f"{family}:64")
        assert a.nodes == b.nodes
        assert set(a.links) == set(b.links)

    @pytest.mark.parametrize("family", sorted(SCALE_BUILDERS))
    def test_link_budget_scales_superlinearly_in_nodes(self, family):
        substrate = make_topology(f"{family}:100")
        assert substrate.num_links >= substrate.num_nodes

    def test_size_suffix_rejected_for_catalog_topologies(self):
        with pytest.raises(TopologyError, match="does not take a size"):
            make_topology("Iris:500")

    def test_malformed_size_suffix_rejected(self):
        with pytest.raises(TopologyError, match="bad topology size"):
            make_topology("waxman:huge")

    def test_unknown_family_with_size_raises(self):
        with pytest.raises(TopologyError, match="unknown topology"):
            make_topology("torus:64")

    @pytest.mark.parametrize("family", sorted(SCALE_BUILDERS))
    def test_undersized_request_rejected(self, family):
        with pytest.raises(TopologyError, match="at least"):
            make_topology(f"{family}:5")


class TestGpuSplit:
    def test_split_marks_core_and_edge_twins(self):
        iris = make_iris()
        split = split_gpu_datacenters(iris, num_edge_gpu=4, seed=0)
        gpu_nodes = split.gpu_nodes()
        # All 4 core nodes plus 4 edge nodes get GPU twins.
        assert len(gpu_nodes) == len(iris.core_nodes) + 4
        assert all(name.endswith("-gpu") for name in gpu_nodes)

    def test_split_reduces_non_gpu_capacity_by_quarter(self):
        iris = make_iris()
        split = split_gpu_datacenters(iris, num_edge_gpu=4, seed=0)
        for twin in split.gpu_nodes():
            original = twin.removesuffix("-gpu")
            half = iris.nodes[original].capacity / 2
            assert split.nodes[twin].capacity == pytest.approx(half)
            assert split.nodes[original].capacity == pytest.approx(0.75 * half)

    def test_split_keeps_connectivity(self):
        split = split_gpu_datacenters(make_citta_studi(), num_edge_gpu=2, seed=3)
        # The SubstrateNetwork constructor raises if disconnected; also
        # sanity-check the element counts grew by the split amounts.
        assert split.num_nodes == 30 + 3 + 2
        assert split.num_links == 35 + 5

    def test_split_rejects_too_many_edges(self):
        with pytest.raises(TopologyError):
            split_gpu_datacenters(make_citta_studi(), num_edge_gpu=100)
