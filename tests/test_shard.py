"""Tests for the sharded serving tier (repro.shard).

Covers the partitioner invariants, the two-phase boundary ledger, the
K=1 bit-identity contract against the unsharded service, cross-shard
two-phase resolution, merged metrics vs the single-shard oracle, and
kill-and-restore failover on process workers.
"""

import dataclasses

import pytest

from repro.api import Experiment
from repro.errors import ShardError, SimulationError
from repro.experiments.config import ExperimentConfig
from repro.registry import register_shard_policy, shard_policy_registry
from repro.serve import poisson_offers
from repro.shard import (
    BoundaryLedger,
    ShardedEmbedderService,
    partition_substrate,
    restrict_plan,
)
from repro.substrate import make_citta_studi
from repro.utils.rng import child_rng, make_rng
from repro.workload.request import Request


def _config(**overrides) -> ExperimentConfig:
    """A serve-sized test config: 12 online slots, measured 2..10."""
    defaults = dict(measure_start=2, measure_stop=10, online_slots=12)
    defaults.update(overrides)
    return ExperimentConfig.test(**defaults)


def _drive(service, scenario, slots, seed):
    """Offer the canonical Poisson trace; return the decision stream."""
    rng = child_rng(make_rng(seed), "serve-traffic")
    decisions = []
    for slot, batch in poisson_offers(scenario, slots, rng):
        decisions.extend(service.offer_many(batch))
        service.advance_to(slot + 1)
    return decisions


# -- partitioner ---------------------------------------------------------------


class TestPartition:
    @pytest.mark.parametrize("policy", sorted(shard_policy_registry.names()))
    @pytest.mark.parametrize("num_shards", [1, 2, 3])
    def test_partition_invariants(self, policy, num_shards):
        substrate = make_citta_studi()
        partition = partition_substrate(
            substrate, num_shards, policy=policy, seed=7
        )
        # Coverage: every node in exactly one shard, shard ids 0..K-1.
        assert set(partition.assignment) == set(substrate.nodes)
        assert set(partition.assignment.values()) == set(range(num_shards))
        assert sum(len(r.nodes) for r in partition.shards) == (
            substrate.num_nodes
        )
        # Link classification: intra links + boundary links = all links.
        intra = sum(r.substrate.num_links for r in partition.shards)
        assert intra + len(partition.boundary_links) == substrate.num_links
        for link in partition.boundary_links:
            assert partition.shard_of(link[0]) != partition.shard_of(link[1])
        # Each region is connected (SubstrateNetwork enforces on build)
        # and inherits the source's node insertion order.
        source_order = list(substrate.nodes)
        for region in partition.shards:
            member_order = [n for n in source_order if n in region.nodes]
            assert list(region.substrate.nodes) == member_order

    @pytest.mark.parametrize("policy", sorted(shard_policy_registry.names()))
    def test_capacity_balanced(self, policy):
        partition = partition_substrate(
            make_citta_studi(), 3, policy=policy, seed=0
        )
        summary = partition.summary()
        assert summary["capacity_imbalance"] < 2.0

    def test_deterministic_given_seed(self):
        substrate = make_citta_studi()
        first = partition_substrate(substrate, 3, seed=5)
        second = partition_substrate(substrate, 3, seed=5)
        assert dict(first.assignment) == dict(second.assignment)
        assert first.boundary_links == second.boundary_links

    def test_k1_is_the_whole_substrate(self):
        substrate = make_citta_studi()
        partition = partition_substrate(substrate, 1)
        region = partition.shards[0].substrate
        assert list(region.nodes) == list(substrate.nodes)
        assert list(region.links) == list(substrate.links)
        assert partition.boundary_links == ()
        assert partition.neighbor_shards(0) == ()

    def test_invalid_shard_counts(self):
        substrate = make_citta_studi()
        with pytest.raises(ShardError, match="at least one shard"):
            partition_substrate(substrate, 0)
        with pytest.raises(ShardError, match="cannot cut"):
            partition_substrate(substrate, substrate.num_nodes + 1)

    def test_unknown_policy_and_unknown_node(self):
        substrate = make_citta_studi()
        with pytest.raises(SimulationError, match="shard policy"):
            partition_substrate(substrate, 2, policy="no-such-policy")
        partition = partition_substrate(substrate, 2)
        with pytest.raises(ShardError, match="not part of substrate"):
            partition.shard_of("no-such-node")

    def test_fragmented_policy_is_rejected(self, line_substrate):
        # Assign the two endpoints of the line to shard 0 and the middle
        # to shard 1: shard 0 is disconnected, a contract violation.
        @register_shard_policy("test-fragmented", description="test-only")
        def fragmented(substrate, num_shards, rng):
            nodes = list(substrate.nodes)
            return {
                node: (0 if node in (nodes[0], nodes[-1]) else 1)
                for node in nodes
            }

        try:
            with pytest.raises(ShardError, match="fragmented"):
                partition_substrate(
                    line_substrate, 2, policy="test-fragmented"
                )
        finally:
            shard_policy_registry.unregister("test-fragmented")

    def test_incomplete_coverage_is_rejected(self, line_substrate):
        @register_shard_policy("test-partial", description="test-only")
        def partial(substrate, num_shards, rng):
            nodes = list(substrate.nodes)
            return {nodes[0]: 0, nodes[1]: 1}

        try:
            with pytest.raises(ShardError, match="broke coverage"):
                partition_substrate(line_substrate, 2, policy="test-partial")
        finally:
            shard_policy_registry.unregister("test-partial")

    def test_tier_aware_gives_every_shard_core(self):
        substrate = make_citta_studi()
        partition = partition_substrate(substrate, 2, policy="tier-aware")
        cores = set(substrate.core_nodes)
        for region in partition.shards:
            assert cores & set(region.nodes)


# -- boundary ledger -----------------------------------------------------------


class TestBoundaryLedger:
    LINK = ("a", "b")

    def _ledger(self, capacity=10.0):
        return BoundaryLedger({self.LINK: capacity})

    def test_reserve_holds_capacity_until_abort(self):
        ledger = self._ledger()
        token = ledger.try_reserve(self.LINK, 6.0)
        assert token is not None
        assert ledger.residual(self.LINK) == pytest.approx(4.0)
        ledger.abort(token)
        assert ledger.residual(self.LINK) == pytest.approx(10.0)
        assert (ledger.reserved, ledger.aborted) == (1, 1)
        assert ledger.outstanding == 0

    def test_reserve_refuses_overload(self):
        ledger = self._ledger()
        assert ledger.try_reserve(self.LINK, 10.5) is None
        token = ledger.try_reserve(self.LINK, 8.0)
        assert ledger.try_reserve(self.LINK, 3.0) is None
        ledger.abort(token)
        assert ledger.try_reserve(self.LINK, 3.0) is not None

    def test_commit_releases_at_departure_slot(self):
        ledger = self._ledger()
        token = ledger.try_reserve(self.LINK, 7.0)
        ledger.commit(token, release_slot=5)
        assert ledger.outstanding == 1
        assert ledger.advance(4) == 0
        assert ledger.residual(self.LINK) == pytest.approx(3.0)
        assert ledger.advance(5) == 1
        assert ledger.residual(self.LINK) == pytest.approx(10.0)
        assert (ledger.committed, ledger.released) == (1, 1)
        assert ledger.outstanding == 0

    def test_two_phase_misuse_raises(self):
        ledger = self._ledger()
        with pytest.raises(ShardError, match="must be positive"):
            ledger.try_reserve(self.LINK, 0.0)
        with pytest.raises(ShardError, match="unknown reservation"):
            ledger.commit(99, release_slot=1)
        token = ledger.try_reserve(self.LINK, 1.0)
        ledger.commit(token, release_slot=3)
        with pytest.raises(ShardError, match="already committed"):
            ledger.commit(token, release_slot=4)
        with pytest.raises(ShardError, match="already committed"):
            ledger.abort(token)
        with pytest.raises(ShardError, match="not a boundary link"):
            ledger.residual(("x", "y"))


# -- plan restriction ----------------------------------------------------------


class TestRestrictPlan:
    def test_whole_substrate_restriction_is_identity(self, test_scenario):
        region = partition_substrate(test_scenario.substrate, 1).shards[0]
        restricted = restrict_plan(test_scenario.plan, region.substrate)
        assert restricted.classes.keys() == test_scenario.plan.classes.keys()
        assert restricted.objective == test_scenario.plan.objective

    def test_restriction_drops_foreign_ingresses_and_patterns(
        self, test_scenario
    ):
        partition = partition_substrate(test_scenario.substrate, 2)
        region = partition.shards[0].substrate
        restricted = restrict_plan(test_scenario.plan, region)
        assert restricted.classes  # something survives on half the net
        for (app, ingress), class_plan in restricted.classes.items():
            assert ingress in region.nodes
            for pattern in class_plan.patterns:
                assert all(
                    node in region.nodes
                    for node in pattern.node_map.values()
                )
                assert all(
                    link in region.links
                    for path in pattern.link_paths.values()
                    for link in path
                )


# -- K=1 bit-identity ----------------------------------------------------------


class TestBitIdentity:
    def test_k1_sharded_equals_unsharded(self):
        config = _config()
        experiment = Experiment(config).algorithms("QUICKG")
        oracle = experiment.serve(seed=3)
        expected = _drive(oracle, oracle.scenario, config.online_slots, 3)

        sharded = experiment.serve(seed=3, shards=1, shard_workers="inline")
        with sharded:
            actual = _drive(
                sharded, sharded.scenario, config.online_slots, 3
            )
        assert actual == expected

    def test_inline_and_process_workers_agree(self):
        config = _config()
        experiment = Experiment(config).algorithms("QUICKG")
        streams = []
        for workers in ("inline", "process"):
            service = experiment.serve(
                seed=3, shards=2, shard_workers=workers
            )
            with service:
                streams.append(
                    _drive(
                        service, service.scenario, config.online_slots, 3
                    )
                )
        assert streams[0] == streams[1]


# -- cross-shard two-phase resolution ------------------------------------------


class TestCrossShard:
    def _saturating_requests(self, service, count=40, duration=3):
        """Arrivals at one shard-0 edge ingress sized to overflow it."""
        scenario = service.scenario
        region = service.partition.shards[0]
        ingress = min(
            node
            for node in region.nodes
            if node not in scenario.substrate.core_nodes
        )
        app = scenario.apps[0]
        total_vnf_size = sum(vnf.size for vnf in app.vnfs)
        demand = region.capacity / (total_vnf_size * 15)
        return [
            Request(
                arrival=0,
                id=1000 + i,
                app_index=0,
                ingress=ingress,
                demand=demand,
                duration=duration,
            )
            for i in range(count)
        ]

    def test_two_phase_commit_and_ledger_account(self):
        config = _config()
        service = (
            Experiment(config)
            .algorithms("QUICKG")
            .serve(seed=0, shards=2, shard_workers="inline")
        )
        with service:
            requests = self._saturating_requests(service)
            decisions = service.offer_many(requests)
            stats = service.cross_shard_stats()
            assert stats["attempts"] > 0
            assert stats["commits"] > 0
            assert stats["commits"] + stats["aborts"] == stats["attempts"]
            assert stats["ledger_reserved"] == (
                stats["ledger_committed"] + stats["ledger_aborted"]
            )
            # Every committed route rescued a home rejection.
            rescued = {route["request"] for route in stats["routes"]}
            for decision in decisions:
                if decision.request.id in rescued:
                    assert decision.accepted
                    assert service.shard_of(decision.request.ingress) == 0
            # Departures release every committed hold.
            service.advance_to(config.online_slots)
            final = service.cross_shard_stats()
            assert final["ledger_released"] == final["ledger_committed"]
            assert service.ledger.outstanding == 0

    def test_cross_shard_can_be_disabled(self):
        config = _config()
        scenario, _ = (
            Experiment(config)
            .algorithms("QUICKG")
            ._streaming_scenario("QUICKG", 0)
        )
        service = ShardedEmbedderService(
            scenario, "QUICKG", 2, workers="inline", cross_shard=False
        )
        with service:
            service.offer_many(self._saturating_requests(service))
            assert service.cross_shard_stats()["attempts"] == 0


# -- merged metrics ------------------------------------------------------------


class TestMetrics:
    def test_k1_merged_metrics_match_single_shard_oracle(self):
        config = _config()
        experiment = Experiment(config).algorithms("QUICKG")
        oracle = experiment.serve(seed=3)
        _drive(oracle, oracle.scenario, config.online_slots, 3)
        expected = oracle.metrics.latest

        sharded = experiment.serve(seed=3, shards=1, shard_workers="inline")
        with sharded:
            _drive(sharded, sharded.scenario, config.online_slots, 3)
            merged = sharded.metrics()

        assert merged.slot == expected.slot
        assert merged.offers == expected.offers
        assert merged.accepted == expected.accepted
        assert merged.rejected == expected.rejected
        assert merged.shed == expected.shed
        assert merged.disrupted == expected.disrupted
        assert merged.utilization == pytest.approx(expected.utilization)
        assert merged.acceptance_rate == pytest.approx(
            expected.acceptance_rate
        )
        assert merged.rolling_acceptance_rate == pytest.approx(
            expected.rolling_acceptance_rate
        )

    def test_k2_counters_sum_over_shards(self):
        config = _config()
        service = (
            Experiment(config)
            .algorithms("QUICKG")
            .serve(seed=3, shards=2, shard_workers="inline")
        )
        with service:
            decisions = _drive(
                service, service.scenario, config.online_slots, 3
            )
            merged = service.metrics()
            commits = service.cross_shard_stats()["commits"]
        # A cross-shard rescue shows up per-shard as one home rejection
        # plus one remote offer/accept; the frontend log is the truth.
        assert merged.offers == len(decisions) + commits
        accepted = sum(1 for d in decisions if d.accepted)
        assert merged.accepted == accepted
        assert merged.rejected == merged.offers - merged.accepted


# -- failover ------------------------------------------------------------------


class TestFailover:
    def test_kill_and_restore_is_bit_identical(self):
        config = _config()
        experiment = Experiment(config).algorithms("QUICKG")
        seed = 11
        # A deterministic pseudo-random kill slot inside the horizon.
        kill_slot = 2 + seed % 5
        kill_shard = seed % 2

        undisturbed = experiment.serve(
            seed=seed, shards=2, shard_workers="process"
        )
        with undisturbed:
            expected = _drive(
                undisturbed, undisturbed.scenario, config.online_slots, seed
            )

        service = experiment.serve(
            seed=seed, shards=2, shard_workers="process"
        )
        with service:
            rng = child_rng(make_rng(seed), "serve-traffic")
            actual = []
            killed = False
            for slot, batch in poisson_offers(
                service.scenario, config.online_slots, rng
            ):
                if slot == kill_slot and not killed:
                    service.kill_worker(kill_shard)
                    assert not service.worker_alive(kill_shard)
                    service.restore_worker(kill_shard)
                    assert service.worker_alive(kill_shard)
                    killed = True
                actual.extend(service.offer_many(batch))
                service.advance_to(slot + 1)
            assert killed
            result = service.finish()
        assert actual == expected
        assert result.decisions == tuple(expected)

    def test_dead_worker_refuses_offers(self):
        config = _config()
        service = (
            Experiment(config)
            .algorithms("QUICKG")
            .serve(seed=3, shards=2, shard_workers="process")
        )
        with service:
            region = service.partition.shards[1]
            service.kill_worker(1)
            with pytest.raises(ShardError, match="dead"):
                service.offer(
                    Request(
                        arrival=0,
                        id=1,
                        app_index=0,
                        ingress=region.nodes[0],
                        demand=1.0,
                        duration=2,
                    )
                )
            service.restore_worker(1)
            assert service.offer(
                Request(
                    arrival=0,
                    id=2,
                    app_index=0,
                    ingress=region.nodes[0],
                    demand=1.0,
                    duration=2,
                )
            )

    def test_restore_guards(self):
        config = _config()
        experiment = Experiment(config).algorithms("QUICKG")

        # Stale checkpoint: with checkpointing disabled, the only
        # checkpoint is the slot-0 boot image.
        stale = experiment.serve(
            seed=3, shards=2, shard_workers="inline", checkpoint_every=0
        )
        with stale:
            stale.advance_to(3)
            with pytest.raises(ShardError, match="checkpoint is at slot 0"):
                stale.restore_worker(0)

        # Mid-slot restore would drop offers the shard already took.
        service = experiment.serve(
            seed=3, shards=2, shard_workers="inline"
        )
        with service:
            region = service.partition.shards[0]
            service.offer(
                Request(
                    arrival=0,
                    id=1,
                    app_index=0,
                    ingress=region.nodes[0],
                    demand=1.0,
                    duration=2,
                )
            )
            with pytest.raises(ShardError, match="already took offers"):
                service.restore_worker(0)
            # An inline worker cannot be killed at all.
            with pytest.raises(ShardError, match="cannot be"):
                service.kill_worker(0)


# -- facade + lifecycle --------------------------------------------------------


class TestFacade:
    def test_serve_guards(self):
        experiment = Experiment(_config()).algorithms("QUICKG")
        with pytest.raises(SimulationError, match="preload_trace"):
            experiment.serve(shards=2, preload_trace=True)
        with pytest.raises(SimulationError, match="max_pending"):
            experiment.serve(shards=2, max_pending=4)
        with pytest.raises(SimulationError, match="event schedules"):
            experiment.events("link-flap").serve(shards=2)

    def test_closed_service_refuses_everything(self):
        service = (
            Experiment(_config())
            .algorithms("QUICKG")
            .serve(seed=3, shards=2, shard_workers="inline")
        )
        service.close()
        service.close()  # idempotent
        with pytest.raises(ShardError, match="closed"):
            service.tick()
        with pytest.raises(ShardError, match="closed"):
            service.metrics()

    def test_offer_ordering_guards(self):
        service = (
            Experiment(_config())
            .algorithms("QUICKG")
            .serve(seed=3, shards=2, shard_workers="inline")
        )
        with service:
            region = service.partition.shards[0]

            def request(rid, arrival):
                return Request(
                    arrival=arrival,
                    id=rid,
                    app_index=0,
                    ingress=region.nodes[0],
                    demand=1.0,
                    duration=2,
                )

            service.advance_to(4)
            with pytest.raises(SimulationError, match="already at slot 4"):
                service.offer(request(1, arrival=2))
            with pytest.raises(SimulationError, match="horizon"):
                service.offer(request(2, arrival=99))

    def test_result_replaces_request_on_cross_shard_accept(self):
        # dataclasses.replace on a Decision keeps all embedding fields;
        # pin the contract the frontend relies on.
        from repro.core.olive import Decision

        base = Decision(
            request=Request(
                arrival=0, id=1, app_index=0, ingress="a",
                demand=1.0, duration=2,
            ),
            accepted=True,
        )
        other = Request(
            arrival=0, id=1, app_index=0, ingress="b",
            demand=1.0, duration=2,
        )
        rewritten = dataclasses.replace(base, request=other)
        assert rewritten.request.ingress == "b"
        assert rewritten.accepted
