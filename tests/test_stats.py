"""Unit tests for repro.stats: aggregation and bootstrap percentiles."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.stats.aggregate import build_aggregate_demand, class_demand_series
from repro.stats.bootstrap import (
    bootstrap_percentile,
    demand_conforms,
    ecdf,
)
from repro.utils.rng import make_rng
from repro.workload.request import Request


def _request(arrival, duration, demand=2.0, app=0, node="a", id=None):
    return Request(
        arrival=arrival,
        id=id if id is not None else arrival * 1000 + duration,
        app_index=app,
        ingress=node,
        demand=demand,
        duration=duration,
    )


class TestClassDemandSeries:
    def test_single_request_activity_window(self):
        series = class_demand_series([_request(2, 3, demand=5.0)], 10)
        expected = np.zeros(10)
        expected[2:5] = 5.0
        assert np.array_equal(series[(0, "a")], expected)

    def test_overlapping_requests_accumulate(self):
        series = class_demand_series(
            [_request(0, 4, demand=1.0, id=1), _request(2, 4, demand=2.0, id=2)],
            8,
        )
        values = series[(0, "a")]
        assert values[1] == 1.0
        assert values[3] == 3.0
        assert values[6] == 0.0

    def test_activity_truncated_at_horizon(self):
        series = class_demand_series([_request(8, 100, demand=1.0)], 10)
        assert series[(0, "a")].sum() == 2.0  # slots 8, 9 only

    def test_classes_are_separated(self):
        series = class_demand_series(
            [
                _request(0, 2, app=0, node="a", id=1),
                _request(0, 2, app=1, node="a", id=2),
                _request(0, 2, app=0, node="b", id=3),
            ],
            4,
        )
        assert set(series) == {(0, "a"), (1, "a"), (0, "b")}

    def test_zero_slots_rejected(self):
        with pytest.raises(WorkloadError):
            class_demand_series([], 0)


class TestBootstrap:
    def test_estimate_close_to_true_percentile(self):
        rng = make_rng(3)
        series = rng.normal(100.0, 10.0, size=2000)
        estimate = bootstrap_percentile(series, alpha=80.0, rng=make_rng(4))
        true = np.percentile(series, 80)
        assert estimate.estimate == pytest.approx(true, rel=0.02)
        assert estimate.ci_low <= true <= estimate.ci_high

    def test_ci_ordering(self):
        estimate = bootstrap_percentile(
            np.arange(100.0), alpha=50.0, rng=make_rng(0)
        )
        assert estimate.ci_low <= estimate.estimate <= estimate.ci_high

    def test_constant_series_degenerate_ci(self):
        estimate = bootstrap_percentile(np.full(50, 7.0), rng=make_rng(0))
        assert estimate.estimate == 7.0
        assert estimate.ci_low == estimate.ci_high == 7.0
        assert estimate.contains(7.0)
        assert not estimate.contains(8.0)

    @pytest.mark.parametrize("alpha", [0.0, -5.0, 101.0])
    def test_alpha_validation(self, alpha):
        with pytest.raises(WorkloadError):
            bootstrap_percentile(np.ones(10), alpha=alpha)

    def test_empty_series_rejected(self):
        with pytest.raises(WorkloadError):
            bootstrap_percentile(np.array([]))

    def test_ecdf(self):
        values, probs = ecdf(np.array([3.0, 1.0, 2.0]))
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert probs.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_conformance_same_distribution(self):
        rng = make_rng(9)
        history = rng.normal(50, 5, size=3000)
        online = rng.normal(50, 5, size=3000)
        assert demand_conforms(online, history, rng=make_rng(1))

    def test_conformance_rejects_shifted_distribution(self):
        rng = make_rng(9)
        history = rng.normal(50, 5, size=3000)
        online = rng.normal(80, 5, size=3000)
        assert not demand_conforms(online, history, rng=make_rng(1))


class TestBuildAggregateDemand:
    def test_aggregate_demand_matches_percentile(self):
        # Constant load of 6.0 (3 overlapping requests of demand 2).
        requests = [
            _request(0, 50, id=1),
            _request(0, 50, id=2),
            _request(0, 50, id=3),
        ]
        aggregates = build_aggregate_demand(requests, 50, rng=make_rng(0))
        assert len(aggregates) == 1
        assert aggregates[0].demand == pytest.approx(6.0)
        assert aggregates[0].class_key == (0, "a")

    def test_negligible_classes_dropped(self):
        # One request active for 1 of 1000 slots: P80 of the series is 0.
        aggregates = build_aggregate_demand(
            [_request(0, 1, demand=1.0)], 1000, rng=make_rng(0)
        )
        assert aggregates == []

    def test_deterministic_given_rng_seed(self):
        requests = [_request(i, 5, id=i) for i in range(20)]
        a = build_aggregate_demand(requests, 30, rng=make_rng(5))
        b = build_aggregate_demand(requests, 30, rng=make_rng(5))
        assert a == b

    def test_sorted_by_class_key(self):
        requests = [
            _request(0, 10, app=1, node="b", id=1),
            _request(0, 10, app=0, node="z", id=2),
            _request(0, 10, app=0, node="a", id=3),
        ]
        aggregates = build_aggregate_demand(requests, 10, rng=make_rng(0))
        keys = [a.class_key for a in aggregates]
        assert keys == sorted(keys)
