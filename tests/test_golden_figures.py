"""Golden snapshots: every figure driver locked at a tiny deterministic
configuration.

Each test runs one driver from :mod:`repro.experiments.figures` at the
smallest meaningful scale and compares its entire (sanitized) output
against a committed JSON snapshot under ``tests/golden/``. The snapshots
are the regression net for the heavily optimized hot path: any change to
embedding decisions, metric arithmetic, trace generation or plan
construction shows up as a diff here — deliberate changes are re-blessed
with ``pytest tests/test_golden_figures.py --update-golden``.

Wall-clock values (the ``runtime`` metric, fig16's timings) are
*structure-only* in the snapshots: keys are locked, numbers are not —
they are real timings and legitimately differ per machine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    RESILIENCE_PROFILES,
    collect_node_timeline,
    run_balance_quantiles,
    run_by_application,
    run_caida,
    run_demand_zoom,
    run_gpu_scenario,
    run_rejection_vs_utilization,
    run_resilience,
    run_runtime_scaling,
    run_scale,
    run_shifted_plan,
    run_unexpected_demand,
    scale_config,
)
from repro.registry import topology_registry
from repro.substrate.topologies import make_topology

#: Metrics whose values are wall-clock timings — locked by key only.
WALLCLOCK_METRICS = ("runtime", "slots_per_sec", "requests_per_sec")


def _ci_json(interval) -> dict:
    """A ConfidenceInterval as a stable JSON fragment."""
    return {
        "mean": interval.mean,
        "half_width": interval.half_width,
        "count": interval.count,
    }


def _summary_json(summary: dict) -> dict:
    """``{alg:metric -> CI}`` sanitized: wall-clock values key-only."""
    out = {}
    for key, interval in summary.items():
        metric = key.split(":", 1)[1] if ":" in key else key
        if metric in WALLCLOCK_METRICS:
            out[key] = "<wall-clock>"
        else:
            out[key] = _ci_json(interval)
    return out


def _keyed_json(data: dict) -> dict:
    """``{sweep value -> summary}`` with string keys (JSON object keys)."""
    return {f"{key:g}" if isinstance(key, float) else str(key):
            _summary_json(summary) for key, summary in data.items()}


@pytest.fixture(scope="module")
def tiny_config() -> ExperimentConfig:
    """The golden scale: CittaStudi, 80 history + 16 online slots."""
    return ExperimentConfig.test(
        history_slots=80, online_slots=16, measure_start=2, measure_stop=14
    )


class TestGoldenFigures:
    def test_fig06_07_rejection_and_cost_vs_utilization(
        self, tiny_config, golden
    ):
        """One driver feeds Fig. 6 (rejection) and Fig. 7 (cost); the
        snapshot covers all its metrics. SLOTOFF joins only at the
        overloaded point — its per-slot LP dominates wall-clock, and one
        point suffices to lock its decisions."""
        data = run_rejection_vs_utilization(
            tiny_config, (0.8, 1.4), algorithms=("OLIVE", "QUICKG")
        )
        data_slotoff = run_rejection_vs_utilization(
            tiny_config, (1.4,), algorithms=("SLOTOFF",)
        )
        golden(
            "fig06_07_rejection_cost",
            {
                "OLIVE+QUICKG": _keyed_json(data),
                "SLOTOFF": _keyed_json(data_slotoff),
            },
        )

    def test_fig08_demand_zoom(self, tiny_config, golden):
        series = run_demand_zoom(
            tiny_config.with_(utilization=1.4), (2, 14),
            algorithms=("OLIVE", "QUICKG"),
        )
        golden(
            "fig08_demand_zoom",
            {
                name: {
                    "slots": data["slots"].tolist(),
                    "requested": data["requested"].tolist(),
                    "allocated": data["allocated"].tolist(),
                }
                for name, data in series.items()
            },
        )

    def test_fig09_by_application(self, tiny_config, golden):
        data = run_by_application(
            tiny_config,
            app_types=("chain", "tree", "accelerator", "standard"),
            algorithms=("OLIVE", "QUICKG", "FULLG"),
        )
        golden("fig09_by_application", _keyed_json(data))

    def test_fig10_gpu_scenario(self, tiny_config, golden):
        # SLOTOFF's per-slot LP dominates wall-clock at the GPU scenario;
        # OLIVE + FULLG are the decisions worth locking.
        summary = run_gpu_scenario(
            tiny_config, algorithms=("OLIVE", "FULLG")
        )
        golden("fig10_gpu_scenario", _summary_json(summary))

    def test_fig11_balance_quantiles(self, tiny_config, golden):
        summary = run_balance_quantiles(
            tiny_config.with_(utilization=1.4), quantile_counts=(1, 10)
        )
        golden(
            "fig11_balance_quantiles",
            {name: _ci_json(interval) for name, interval in summary.items()},
        )

    def test_fig12_node_timeline(self, golden):
        config = ExperimentConfig.test(
            topology="Iris",
            history_slots=80, online_slots=16,
            measure_start=2, measure_stop=14,
        )
        timeline = collect_node_timeline(config, "Franklin")
        golden(
            "fig12_node_timeline",
            {
                "node": timeline.node,
                "num_slots": timeline.num_slots,
                "guaranteed_demand": {
                    str(app): value
                    for app, value in timeline.guaranteed_demand.items()
                },
                "status_counts": {
                    str(app): timeline.counts(app)
                    for app in sorted(timeline.entries)
                },
                "active_demand": {
                    str(app): series.tolist()
                    for app, series in timeline.active_demand.items()
                },
            },
        )

    def test_fig13_unexpected_demand(self, tiny_config, golden):
        summary = run_unexpected_demand(
            tiny_config.with_(utilization=1.4),
            plan_utilizations=(0.6, 1.0),
            reference_algorithms=("OLIVE", "QUICKG"),
        )
        golden(
            "fig13_unexpected_demand",
            {name: _ci_json(interval) for name, interval in summary.items()},
        )

    def test_fig14_shifted_plan(self, tiny_config, golden):
        data = run_shifted_plan(tiny_config, (0.8, 1.4))
        golden("fig14_shifted_plan", _keyed_json(data))

    def test_fig15_caida(self, tiny_config, golden):
        data = run_caida(tiny_config, (0.8, 1.4), algorithms=("OLIVE", "QUICKG"))
        golden("fig15_caida", _keyed_json(data))

    def test_fig16_runtime_scaling_structure(self, tiny_config, golden):
        """Runtime numbers are wall-clock; the snapshot locks the result
        structure (sweep points × algorithms) only."""
        data = run_runtime_scaling(
            tiny_config,
            arrival_rates=(2.0, 5.0),
            utilizations=(0.8, 1.4),
        )
        golden(
            "fig16_runtime_structure",
            {
                section: {
                    f"{point:g}": sorted(summary)
                    for point, summary in by_point.items()
                }
                for section, by_point in data.items()
            },
        )

    def test_fig_resilience(self, tiny_config, golden):
        data = run_resilience(
            tiny_config.with_(utilization=1.4),
            profiles=RESILIENCE_PROFILES,
            algorithms=("OLIVE", "QUICKG"),
            policy="preempt",
        )
        golden("fig_resilience", _keyed_json(data))

    def test_fig_scale(self, tiny_config, golden):
        """The scale curve at the bottom of the ladder: decisions locked,
        throughput values wall-clock (key-only) like fig16's timings."""
        data = run_scale(
            scale_config(tiny_config), sizes=(26, 52),
            algorithms=("OLIVE", "QUICKG"),
        )
        golden("fig_scale", _keyed_json(data))

    def test_table2_topologies(self, golden):
        """Table II: the structural summary of every registered topology."""
        summaries = {}
        for name in topology_registry.names():
            summary = make_topology(name).summary()
            summaries[name] = {
                key: (value.item() if isinstance(value, np.generic) else value)
                for key, value in summary.items()
            }
        golden("table2_topologies", summaries)
