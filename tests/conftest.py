"""Shared fixtures: hand-built tiny substrates and applications.

The tiny fixtures are deliberately small enough that expected behaviour can
be computed by hand in the tests; the session-scoped scenario fixture gives
integration tests a realistic (but fast) end-to-end pipeline without
rebuilding the plan per test.
"""

from __future__ import annotations

import difflib
import json
import os
from pathlib import Path

import pytest
from hypothesis import HealthCheck, settings

from repro.apps.application import ROOT_ID, VNF, Application, VirtualLink, VNFKind
from repro.experiments import cache as result_cache
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import build_scenario
from repro.sim.runner import ParallelRunner, set_default_runner
from repro.substrate.network import LinkAttrs, NodeAttrs, SubstrateNetwork
from repro.substrate.tiers import Tier
from repro.utils.paths import CACHE_ROOT_ENV, DATA_ROOT_ENV
from repro.utils.rng import make_rng


# -- hypothesis hygiene --------------------------------------------------------
#
# One registered profile per use case, loaded deterministically so local
# runs and CI shrink/replay identically:
#
# * ``ci`` (default): derandomized — the same examples every run, no
#   wall-clock deadline (scenario-building examples legitimately take
#   hundreds of ms on a busy CI box, and flaky deadline failures are
#   worse than none).
# * ``dev``: random exploration for bug hunting; select it with
#   ``HYPOTHESIS_PROFILE=dev pytest ...``.
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None, max_examples=50)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json snapshots from the current run "
        "instead of comparing against them",
    )


#: Committed figure-driver snapshots (see tests/test_golden_figures.py).
GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture
def golden(request):
    """Compare ``data`` against the committed snapshot ``name``.

    Under ``--update-golden`` the snapshot is rewritten instead. Failures
    print a unified diff of the canonical JSON rendering, so a divergence
    reads like a code review, not a wall of repr.
    """
    update = request.config.getoption("--update-golden")

    def check(name: str, data) -> None:
        path = GOLDEN_DIR / f"{name}.json"
        actual = json.dumps(data, indent=2, sort_keys=True) + "\n"
        if update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(actual)
            return
        if not path.exists():
            pytest.fail(
                f"no golden snapshot {path.name}; create it with "
                f"`pytest {request.node.nodeid} --update-golden` and commit "
                "the file"
            )
        expected = path.read_text()
        if actual != expected:
            diff = "\n".join(
                difflib.unified_diff(
                    expected.splitlines(),
                    actual.splitlines(),
                    fromfile=f"golden/{path.name} (committed)",
                    tofile=f"golden/{path.name} (this run)",
                    lineterm="",
                )
            )
            pytest.fail(
                f"golden snapshot {path.name} diverged — if the change is "
                "intended, re-run with --update-golden and commit:\n" + diff
            )

    return check


@pytest.fixture(autouse=True)
def _isolated_runner_and_cache(tmp_path, monkeypatch):
    """Keep the process-wide runner/cache state out of the home directory.

    CLI invocations configure a global runner and result cache; tests must
    neither write to ``~/.cache`` nor leak an enabled cache (or a parallel
    runner) into the next test.
    """
    monkeypatch.setenv(DATA_ROOT_ENV, str(tmp_path / "repro-data"))
    monkeypatch.setenv(CACHE_ROOT_ENV, str(tmp_path / "repro-cache"))
    yield
    set_default_runner(ParallelRunner(jobs=1))
    result_cache.configure_cache(enabled=False)


def make_line_substrate(
    node_capacity: float = 1000.0,
    link_capacity: float = 500.0,
) -> SubstrateNetwork:
    """A 4-node line: edge-a — transport — core — edge-b.

    Costs: edge 50, transport 10, core 1 per CU; links cost 1 per CU.
    """
    nodes = {
        "edge-a": NodeAttrs(tier=Tier.EDGE, capacity=node_capacity, cost=50.0),
        "transport": NodeAttrs(
            tier=Tier.TRANSPORT, capacity=node_capacity * 3, cost=10.0
        ),
        "core": NodeAttrs(
            tier=Tier.CORE, capacity=node_capacity * 9, cost=1.0
        ),
        "edge-b": NodeAttrs(tier=Tier.EDGE, capacity=node_capacity, cost=50.0),
    }
    links = {
        ("edge-a", "transport"): LinkAttrs(
            tier=Tier.EDGE, capacity=link_capacity, cost=1.0
        ),
        ("core", "transport"): LinkAttrs(
            tier=Tier.TRANSPORT, capacity=link_capacity * 3, cost=1.0
        ),
        ("core", "edge-b"): LinkAttrs(
            tier=Tier.EDGE, capacity=link_capacity, cost=1.0
        ),
    }
    return SubstrateNetwork(name="line4", nodes=nodes, links=links)


def make_two_vnf_chain(
    node_size: float = 10.0, link_size: float = 5.0
) -> Application:
    """θ → v1 → v2 with fixed sizes (node β = 10, link β = 5)."""
    return Application(
        name="chain-fixed",
        vnfs=(
            VNF(ROOT_ID, 0.0, VNFKind.ROOT),
            VNF(1, node_size),
            VNF(2, node_size),
        ),
        links=(
            VirtualLink(ROOT_ID, 1, link_size),
            VirtualLink(1, 2, link_size),
        ),
    )


@pytest.fixture
def line_substrate() -> SubstrateNetwork:
    return make_line_substrate()


@pytest.fixture
def chain_app() -> Application:
    return make_two_vnf_chain()


@pytest.fixture
def rng():
    return make_rng(1234)


@pytest.fixture(scope="session")
def test_config() -> ExperimentConfig:
    return ExperimentConfig.test()


@pytest.fixture(scope="session")
def test_scenario(test_config):
    """A shared small end-to-end scenario (CittaStudi, 120+24 slots)."""
    return build_scenario(test_config, seed=1)
