"""Shared fixtures: hand-built tiny substrates and applications.

The tiny fixtures are deliberately small enough that expected behaviour can
be computed by hand in the tests; the session-scoped scenario fixture gives
integration tests a realistic (but fast) end-to-end pipeline without
rebuilding the plan per test.
"""

from __future__ import annotations

import pytest

from repro.apps.application import ROOT_ID, Application, VNF, VNFKind, VirtualLink
from repro.experiments import cache as result_cache
from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import build_scenario
from repro.sim.runner import ParallelRunner, set_default_runner
from repro.substrate.network import LinkAttrs, NodeAttrs, SubstrateNetwork
from repro.substrate.tiers import Tier
from repro.utils.paths import CACHE_ROOT_ENV, DATA_ROOT_ENV
from repro.utils.rng import make_rng


@pytest.fixture(autouse=True)
def _isolated_runner_and_cache(tmp_path, monkeypatch):
    """Keep the process-wide runner/cache state out of the home directory.

    CLI invocations configure a global runner and result cache; tests must
    neither write to ``~/.cache`` nor leak an enabled cache (or a parallel
    runner) into the next test.
    """
    monkeypatch.setenv(DATA_ROOT_ENV, str(tmp_path / "repro-data"))
    monkeypatch.setenv(CACHE_ROOT_ENV, str(tmp_path / "repro-cache"))
    yield
    set_default_runner(ParallelRunner(jobs=1))
    result_cache.configure_cache(enabled=False)


def make_line_substrate(
    node_capacity: float = 1000.0,
    link_capacity: float = 500.0,
) -> SubstrateNetwork:
    """A 4-node line: edge-a — transport — core — edge-b.

    Costs: edge 50, transport 10, core 1 per CU; links cost 1 per CU.
    """
    nodes = {
        "edge-a": NodeAttrs(tier=Tier.EDGE, capacity=node_capacity, cost=50.0),
        "transport": NodeAttrs(
            tier=Tier.TRANSPORT, capacity=node_capacity * 3, cost=10.0
        ),
        "core": NodeAttrs(
            tier=Tier.CORE, capacity=node_capacity * 9, cost=1.0
        ),
        "edge-b": NodeAttrs(tier=Tier.EDGE, capacity=node_capacity, cost=50.0),
    }
    links = {
        ("edge-a", "transport"): LinkAttrs(
            tier=Tier.EDGE, capacity=link_capacity, cost=1.0
        ),
        ("core", "transport"): LinkAttrs(
            tier=Tier.TRANSPORT, capacity=link_capacity * 3, cost=1.0
        ),
        ("core", "edge-b"): LinkAttrs(
            tier=Tier.EDGE, capacity=link_capacity, cost=1.0
        ),
    }
    return SubstrateNetwork(name="line4", nodes=nodes, links=links)


def make_two_vnf_chain(
    node_size: float = 10.0, link_size: float = 5.0
) -> Application:
    """θ → v1 → v2 with fixed sizes (node β = 10, link β = 5)."""
    return Application(
        name="chain-fixed",
        vnfs=(
            VNF(ROOT_ID, 0.0, VNFKind.ROOT),
            VNF(1, node_size),
            VNF(2, node_size),
        ),
        links=(
            VirtualLink(ROOT_ID, 1, link_size),
            VirtualLink(1, 2, link_size),
        ),
    )


@pytest.fixture
def line_substrate() -> SubstrateNetwork:
    return make_line_substrate()


@pytest.fixture
def chain_app() -> Application:
    return make_two_vnf_chain()


@pytest.fixture
def rng():
    return make_rng(1234)


@pytest.fixture(scope="session")
def test_config() -> ExperimentConfig:
    return ExperimentConfig.test()


@pytest.fixture(scope="session")
def test_scenario(test_config):
    """A shared small end-to-end scenario (CittaStudi, 120+24 slots)."""
    return build_scenario(test_config, seed=1)
