"""Unit tests for repro.utils: seeding discipline and path helpers."""

import numpy as np
import pytest

from repro.utils.paths import capacity_constrained_dijkstra, path_cost, path_links
from repro.utils.rng import child_rng, make_rng, spawn_rngs


class TestRng:
    def test_same_seed_same_stream(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        assert np.array_equal(a, b)

    def test_child_streams_are_reproducible(self):
        a = child_rng(make_rng(7), "arrivals", 3).random(5)
        b = child_rng(make_rng(7), "arrivals", 3).random(5)
        assert np.array_equal(a, b)

    def test_child_streams_differ_by_key(self):
        root = make_rng(7)
        a = child_rng(root, "arrivals").random(5)
        b = child_rng(root, "departures").random(5)
        assert not np.array_equal(a, b)

    def test_child_independent_of_parent_consumption(self):
        root = make_rng(7)
        before = child_rng(root, "x").random(3)
        root.random(100)  # consume the parent stream
        after = child_rng(root, "x").random(3)
        assert np.array_equal(before, after)

    def test_spawn_rngs_count_and_independence(self):
        children = spawn_rngs(make_rng(0), 3)
        assert len(children) == 3
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]


def _square_adjacency():
    """4-cycle a-b-c-d with a diagonal a-c."""
    links = {
        ("a", "b"): 1.0,
        ("b", "c"): 1.0,
        ("c", "d"): 1.0,
        ("a", "d"): 1.0,
        ("a", "c"): 5.0,
    }
    adjacency = {n: [] for n in "abcd"}
    for (u, v) in links:
        adjacency[u].append((v, (u, v)))
        adjacency[v].append((u, (u, v)))
    return adjacency, links


class TestDijkstra:
    def test_shortest_path_costs(self):
        adjacency, weights = _square_adjacency()
        dist, parent = capacity_constrained_dijkstra(
            adjacency, "a", lambda l: weights[l], lambda l: True
        )
        assert dist["c"] == pytest.approx(2.0)  # a-b-c beats the 5.0 diagonal
        assert dist["d"] == pytest.approx(1.0)

    def test_path_reconstruction(self):
        adjacency, weights = _square_adjacency()
        _, parent = capacity_constrained_dijkstra(
            adjacency, "a", lambda l: weights[l], lambda l: True
        )
        links = path_links(parent, "a", "c")
        assert links == [("a", "b"), ("b", "c")]
        assert path_cost(links, lambda l: weights[l]) == pytest.approx(2.0)

    def test_infeasible_links_excluded(self):
        adjacency, weights = _square_adjacency()
        # Forbid both cheap two-hop routes: only the diagonal remains.
        banned = {("a", "b"), ("a", "d")}
        dist, parent = capacity_constrained_dijkstra(
            adjacency, "a", lambda l: weights[l], lambda l: l not in banned
        )
        assert dist["c"] == pytest.approx(5.0)
        assert path_links(parent, "a", "c") == [("a", "c")]

    def test_unreachable_node_absent(self):
        adjacency, weights = _square_adjacency()
        dist, parent = capacity_constrained_dijkstra(
            adjacency, "a", lambda l: weights[l], lambda l: False
        )
        assert dist == {"a": 0.0}
        assert path_links(parent, "a", "c") is None

    def test_source_path_is_empty(self):
        adjacency, weights = _square_adjacency()
        _, parent = capacity_constrained_dijkstra(
            adjacency, "a", lambda l: weights[l], lambda l: True
        )
        assert path_links(parent, "a", "a") == []
