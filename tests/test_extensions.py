"""Tests for the extension modules: NODERANK, replanning, diurnal traces,
and topology analysis."""

import numpy as np
import pytest

from repro.apps.catalog import make_chain
from repro.baselines.noderank import NodeRankAlgorithm, compute_node_ranks
from repro.core.residual import ResidualState
from repro.errors import PlanError, WorkloadError
from repro.plan.replanning import ReplanningOliveAlgorithm
from repro.sim.engine import simulate
from repro.sim.metrics import rejection_rate
from repro.substrate.analysis import (
    analyze_topology,
    articulation_nodes,
    bottleneck_links,
    edge_uplink_capacity,
    tier_summaries,
)
from repro.substrate.tiers import Tier
from repro.substrate.topologies import make_citta_studi, make_iris
from repro.utils.rng import make_rng
from repro.workload.diurnal import diurnal_rates, generate_diurnal_trace
from repro.workload.request import Request
from repro.workload.trace import TraceConfig
from tests.conftest import make_line_substrate, make_two_vnf_chain


def _request(rid, arrival=0, demand=1.0, ingress="edge-a", duration=5):
    return Request(
        arrival=arrival, id=rid, app_index=0, ingress=ingress,
        demand=demand, duration=duration,
    )


class TestNodeRanks:
    def test_ranks_form_distribution(self, line_substrate):
        ranks = compute_node_ranks(line_substrate, ResidualState(line_substrate))
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-6)
        assert all(r >= 0 for r in ranks.values())

    def test_high_capacity_nodes_rank_higher(self, line_substrate):
        ranks = compute_node_ranks(line_substrate, ResidualState(line_substrate))
        # Core has 9× edge capacity and 3× the link bandwidth.
        assert ranks["core"] > ranks["edge-a"]

    def test_depleted_node_loses_rank(self, line_substrate):
        residual = ResidualState(line_substrate)
        before = compute_node_ranks(line_substrate, residual)
        residual.nodes["core"] = 0.0
        after = compute_node_ranks(line_substrate, residual)
        assert after["core"] < before["core"]

    def test_zero_capacity_everywhere(self, line_substrate):
        residual = ResidualState(line_substrate)
        for node in residual.nodes:
            residual.nodes[node] = 0.0
        ranks = compute_node_ranks(line_substrate, residual)
        assert all(r == 0.0 for r in ranks.values())


class TestNodeRankAlgorithm:
    def test_accepts_and_releases(self, line_substrate, chain_app):
        algorithm = NodeRankAlgorithm(line_substrate, [chain_app])
        request = _request(1, demand=2.0)
        decision = algorithm.process(request)
        assert decision.accepted
        assert algorithm.active_demand() == pytest.approx(2.0)
        algorithm.release(request)
        assert algorithm.active_demand() == 0.0

    def test_rejects_when_full(self, chain_app):
        substrate = make_line_substrate(node_capacity=10.0, link_capacity=10.0)
        algorithm = NodeRankAlgorithm(substrate, [chain_app])
        decision = algorithm.process(_request(1, demand=100.0))
        assert not decision.accepted

    def test_spreads_across_nodes_when_needed(self, chain_app):
        # No single node fits both VNFs (20 each at demand 2 → 40), but
        # rank mapping places them one by one with provisional tracking.
        substrate = make_line_substrate(node_capacity=3.0, link_capacity=500.0)
        residual_boost = {"transport": 25.0, "core": 25.0}
        algorithm = NodeRankAlgorithm(substrate, [chain_app])
        for node, value in residual_boost.items():
            algorithm.residual.nodes[node] = value
        decision = algorithm.process(_request(1, demand=2.0))
        assert decision.accepted
        hosts = {decision.embedding.node_map[1], decision.embedding.node_map[2]}
        assert hosts == {"transport", "core"}

    def test_runs_under_simulator(self, line_substrate, chain_app):
        algorithm = NodeRankAlgorithm(line_substrate, [chain_app])
        requests = [_request(i, arrival=i % 4) for i in range(12)]
        result = simulate(algorithm, requests, 8)
        assert len(result.decisions) == 12
        assert result.algorithm_name == "NODERANK"


class TestReplanning:
    def test_validation(self, line_substrate, chain_app):
        with pytest.raises(PlanError):
            ReplanningOliveAlgorithm(
                line_substrate, [chain_app], interval=0
            )
        with pytest.raises(PlanError):
            ReplanningOliveAlgorithm(
                line_substrate, [chain_app], interval=10, window=5
            )

    def test_replans_at_interval(self, line_substrate, chain_app):
        algorithm = ReplanningOliveAlgorithm(
            line_substrate, [chain_app], interval=4, window=8
        )
        requests = [
            _request(i, arrival=i % 12, demand=1.0, duration=3)
            for i in range(60)
        ]
        simulate(algorithm, requests, 12)
        # Replans at t = 4 and t = 8 (never at t = 0).
        assert algorithm.replan_count == 2
        assert not algorithm.plan.is_empty

    def test_starts_planless_like_quickg(self, line_substrate, chain_app):
        algorithm = ReplanningOliveAlgorithm(
            line_substrate, [chain_app], interval=100, window=100
        )
        decision = algorithm.process(_request(1))
        assert decision.accepted and decision.via_greedy

    def test_planned_allocations_after_replan(self, line_substrate, chain_app):
        algorithm = ReplanningOliveAlgorithm(
            line_substrate, [chain_app], interval=4, window=8
        )
        # Steady demand so the replanned aggregate is positive.
        requests = [
            _request(i, arrival=i // 5, demand=1.0, duration=4)
            for i in range(50)
        ]
        result = simulate(algorithm, requests, 10)
        planned = [d for d in result.decisions if d.planned]
        assert planned, "replanned OLIVE should serve some requests as planned"


class TestDiurnal:
    def test_rates_oscillate_around_mean(self):
        rates = diurnal_rates(400, mean_rate=100.0, amplitude=0.5, period=100)
        assert rates.mean() == pytest.approx(100.0, rel=0.01)
        assert rates.max() == pytest.approx(150.0, rel=0.01)
        assert rates.min() == pytest.approx(50.0, rel=0.01)

    def test_rate_validation(self):
        with pytest.raises(WorkloadError):
            diurnal_rates(10, 1.0, amplitude=1.0)
        with pytest.raises(WorkloadError):
            diurnal_rates(10, 1.0, period=1)

    def test_trace_has_diurnal_structure(self, line_substrate, rng):
        apps = [make_chain(rng, num_vnfs=3)]
        config = TraceConfig(
            history_slots=300, online_slots=20, arrivals_per_node=20.0
        )
        trace = generate_diurnal_trace(
            line_substrate, apps, config, rng, amplitude=0.8, period=100
        )
        counts = np.zeros(300)
        for request in trace.history_requests():
            counts[request.arrival] += 1
        # Peak-phase slots should see far more arrivals than trough-phase.
        peak = counts[15:35].mean()  # sin max near t = 25
        trough = counts[65:85].mean()  # sin min near t = 75
        assert peak > 2 * trough

    def test_trace_determinism(self, line_substrate):
        apps = [make_chain(make_rng(0), num_vnfs=3)]
        config = TraceConfig(history_slots=50, online_slots=10)
        a = generate_diurnal_trace(line_substrate, apps, config, make_rng(3))
        b = generate_diurnal_trace(line_substrate, apps, config, make_rng(3))
        assert a.requests == b.requests


class TestTopologyAnalysis:
    def test_tier_summaries_cover_all_tiers(self):
        summaries = tier_summaries(make_iris())
        assert set(summaries) == {Tier.EDGE, Tier.TRANSPORT, Tier.CORE}
        assert summaries[Tier.EDGE].num_nodes == 34
        assert summaries[Tier.EDGE].total_capacity == pytest.approx(6.8e6)

    def test_edge_uplink_capacity(self, line_substrate):
        uplinks = edge_uplink_capacity(line_substrate)
        assert uplinks["edge-a"] == pytest.approx(500.0)
        assert set(uplinks) == {"edge-a", "edge-b"}

    def test_bottlenecks_sorted_descending(self):
        scored = bottleneck_links(make_citta_studi(), top=5)
        assert len(scored) == 5
        values = [v for _, v in scored]
        assert values == sorted(values, reverse=True)

    def test_articulation_nodes_on_line(self, line_substrate):
        # Every interior node of a line disconnects it.
        assert articulation_nodes(line_substrate) == ["core", "transport"]

    def test_full_report(self):
        report = analyze_topology(make_iris())
        assert report.name == "Iris"
        assert report.diameter_hops >= 2
        assert report.oversubscription() > 0
        assert report.mean_edge_uplink_capacity > 0
        assert len(report.bottleneck_links) == 5
