"""Tests for the fluent experiment facade (repro.api)."""

import csv
import io

import pytest

from repro import api
from repro.baselines.noderank import NodeRankAlgorithm
from repro.errors import SimulationError
from repro.experiments import figures
from repro.experiments.__main__ import main
from repro.experiments.cache import configure_cache
from repro.experiments.config import ExperimentConfig
from repro.registry import algorithm_registry, register_algorithm


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig.test(
        history_slots=60, online_slots=12, measure_start=2, measure_stop=10,
    )


_WALLCLOCK_SUFFIXES = (":runtime", ":slots_per_sec", ":requests_per_sec")


def _drop_runtime(summary):
    """Wall-clock metrics are genuine timings — never compared."""
    return {
        key: value
        for key, value in summary.items()
        if not key.endswith(_WALLCLOCK_SUFFIXES)
    }


class TestFluentBuilder:
    def test_chained_calls_do_not_mutate(self, tiny_config):
        base = api.Experiment(tiny_config).algorithms("OLIVE")
        forked = base.perturb(shift_plan_ingress=True).sweep(
            "utilization", (0.8, 1.2)
        )
        assert base._perturbations == ()
        assert base._sweeps == ()
        assert forked._perturbations == (("shift_plan_ingress", True),)

    def test_requires_experiment_config(self):
        with pytest.raises(SimulationError, match="ExperimentConfig"):
            api.Experiment("Iris")

    def test_unknown_algorithm_fails_fast(self, tiny_config):
        with pytest.raises(SimulationError, match="unknown algorithm"):
            api.Experiment(tiny_config).algorithms("MAGIC")

    def test_empty_algorithms_rejected(self, tiny_config):
        with pytest.raises(SimulationError, match="at least one"):
            api.Experiment(tiny_config).algorithms()

    def test_unknown_sweep_param_rejected(self, tiny_config):
        with pytest.raises(SimulationError, match="unknown sweep parameter"):
            api.Experiment(tiny_config).sweep("warp_factor", (1, 2))

    def test_empty_sweep_rejected(self, tiny_config):
        with pytest.raises(SimulationError, match="no values"):
            api.Experiment(tiny_config).sweep("utilization", ())

    def test_duplicate_sweep_axis_rejected(self, tiny_config):
        experiment = api.Experiment(tiny_config).sweep("utilization", (1.0,))
        with pytest.raises(SimulationError, match="already swept"):
            experiment.sweep("utilization", (1.2,))

    def test_unknown_perturbation_rejected(self, tiny_config):
        with pytest.raises(SimulationError, match="unknown perturbation"):
            api.Experiment(tiny_config).perturb(gravity=9.81)

    def test_points_cartesian_product(self, tiny_config):
        experiment = (
            api.Experiment(tiny_config)
            .sweep("utilization", (0.8, 1.2))
            .sweep("plan_utilization", (0.6,))
        )
        points = experiment.points()
        assert len(points) == 2
        params, config, scenario_kwargs = points[0]
        assert params == {"utilization": 0.8, "plan_utilization": 0.6}
        # Config fields land in the config; perturbations in scenario kwargs.
        assert config.utilization == 0.8
        assert scenario_kwargs == {"plan_utilization": 0.6}

    def test_repetitions_and_seed_conveniences(self, tiny_config):
        experiment = api.Experiment(tiny_config).repetitions(5).seed(42)
        assert experiment.config.repetitions == 5
        assert experiment.config.base_seed == 42


class TestSweepResult:
    @pytest.fixture(scope="class")
    def result(self, tiny_config):
        return (
            api.Experiment(tiny_config)
            .algorithms("QUICKG")
            .sweep("utilization", (0.8, 1.2))
            .run()
        )

    def test_iteration_and_keyed(self, result):
        assert len(result) == 2
        keyed = result.keyed("utilization")
        assert set(keyed) == {0.8, 1.2}
        assert "QUICKG:rejection_rate" in keyed[0.8]

    def test_keyed_unknown_param(self, result):
        with pytest.raises(SimulationError, match="not swept"):
            result.keyed("topology")

    def test_keyed_rejects_multi_axis_sweeps(self, tiny_config):
        # A flat {value -> summary} over one axis would silently drop the
        # other axis's points; building the (unexecuted) result is enough.
        multi = api.SweepResult(
            [], algorithms=("QUICKG",),
            sweep_params=("utilization", "app_mix"),
        )
        with pytest.raises(SimulationError, match="ambiguous"):
            multi.keyed("utilization")

    def test_summary_requires_single_point(self, result):
        with pytest.raises(SimulationError, match="2 sweep points"):
            result.summary

    def test_to_rows_tidy_shape(self, result):
        rows = result.to_rows()
        # 2 points × 1 algorithm × 11 metrics (see DEFAULT_METRICS)
        assert len(rows) == 22
        row = rows[0]
        assert row["algorithm"] == "QUICKG"
        assert {"utilization", "metric", "mean", "half_width", "low",
                "high", "count", "confidence"} <= set(row)

    def test_to_csv_roundtrip(self, result, tmp_path):
        path = tmp_path / "out.csv"
        text = result.to_csv(path)
        assert path.read_text() == text
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(result.to_rows())
        assert parsed[0]["algorithm"] == "QUICKG"

    def test_table_contains_algorithms_and_params(self, result):
        table = result.table("rejection_rate")
        assert "QUICKG" in table.splitlines()[0]
        assert "utilization" in table.splitlines()[0]
        assert "0.8" in table

    def test_metrics_listing(self, result):
        assert "rejection_rate" in result.metrics()
        assert "total_cost" in result.metrics()

    def test_point_value_lookup(self, result):
        interval = result[0].value("QUICKG", "rejection_rate")
        assert 0.0 <= interval.mean <= 1.0
        with pytest.raises(SimulationError, match="no summary"):
            result[0].value("QUICKG", "nonexistent")


class TestFacadeMatchesFigures:
    """The facade and the legacy figures pipeline are bit-identical."""

    def test_matches_legacy_sweep_shim(self, tiny_config):
        legacy = figures._sweep(tiny_config, ("OLIVE", "QUICKG"))
        facade = (
            api.Experiment(tiny_config)
            .algorithms("OLIVE", "QUICKG")
            .run()
            .summary
        )
        assert _drop_runtime(legacy) == _drop_runtime(facade)

    def test_matches_figure_driver(self, tiny_config):
        driver = figures.run_rejection_vs_utilization(
            tiny_config, (1.2,), algorithms=("QUICKG",)
        )
        facade = (
            api.Experiment(tiny_config)
            .algorithms("QUICKG")
            .sweep("utilization", (1.2,))
            .run()
            .keyed("utilization")
        )
        assert _drop_runtime(driver[1.2]) == _drop_runtime(facade[1.2])

    def test_perturbed_matches_legacy(self, tiny_config):
        legacy = figures._sweep(
            tiny_config, ("OLIVE",), shift_plan_ingress=True
        )
        facade = (
            api.Experiment(tiny_config)
            .algorithms("OLIVE")
            .perturb(shift_plan_ingress=True)
            .run()
            .summary
        )
        assert _drop_runtime(legacy) == _drop_runtime(facade)

    def test_cached_equals_uncached(self, tiny_config, tmp_path):
        configure_cache(enabled=True, root=tmp_path / "api-cache")
        experiment = api.Experiment(tiny_config).algorithms("QUICKG")
        first = experiment.run().summary
        second = experiment.run().summary  # cache hit
        bypass = experiment.run(cache=False).summary  # recomputed
        assert first == second
        assert _drop_runtime(first) == _drop_runtime(bypass)

    @pytest.mark.slow
    def test_serial_equals_jobs4(self, tiny_config):
        experiment = (
            api.Experiment(tiny_config.with_(repetitions=2))
            .algorithms("OLIVE", "QUICKG")
        )
        serial = experiment.run(jobs=1).summary
        pooled = experiment.run(jobs=4).summary
        assert _drop_runtime(serial) == _drop_runtime(pooled)


class TestThirdPartyAlgorithm:
    """A custom algorithm registered outside repro runs end-to-end."""

    def test_registered_algorithm_runs_through_facade(
        self, tiny_config, capsys
    ):
        @register_algorithm(
            "NODERANK",
            needs_plan=False,
            description="Cheng et al.-style node ranking (registered in-test)",
        )
        def make_noderank(scenario):
            return NodeRankAlgorithm(
                scenario.substrate, scenario.apps, scenario.efficiency
            )

        try:
            result = (
                api.Experiment(tiny_config)
                .algorithms("NODERANK", "QUICKG")
                .run()
            )
            rejection = result.summary["NODERANK:rejection_rate"]
            assert 0.0 <= rejection.mean <= 1.0
            # The plan is skipped: no registered algorithm needs one.
            assert not api.algorithms_need_plan(["NODERANK", "QUICKG"])
            # And the CLI's `list` target shows it alongside the built-ins.
            assert main(["list"]) == 0
            out = capsys.readouterr().out
            assert "NODERANK" in out
            assert "OLIVE" in out
        finally:
            algorithm_registry.unregister("NODERANK")

    def test_cli_algo_flag_uses_registry(self, capsys):
        code = main(["fig8", "--scale", "test", "--algo", "QUICKG"])
        assert code == 0
        assert "QUICKG" in capsys.readouterr().out

    def test_cli_algo_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig6", "--scale", "test", "--algo", "MAGIC"])
        assert excinfo.value.code == 2
        assert "unknown algorithm" in capsys.readouterr().err

    def test_cli_algo_flag_warns_on_fixed_figures(self, capsys):
        # fig12 on a non-Iris topology exits early (code 2), cheaply
        # exercising the --algo-is-ignored notice.
        code = main(["fig12", "--topology", "CittaStudi", "--scale", "test",
                     "--algo", "QUICKG"])
        assert code == 2
        assert "--algo is ignored" in capsys.readouterr().out


class TestPluginCacheKeys:
    def test_builtin_points_have_no_plugin_fingerprint(self, tiny_config):
        assert api._plugin_fingerprint(tiny_config, ("OLIVE", "QUICKG")) is None

    def test_external_factory_changes_the_fingerprint(self, tiny_config):
        @register_algorithm("EXT", needs_plan=False, description="external")
        def make_ext(scenario):  # pragma: no cover - never instantiated
            return None

        try:
            fingerprint = api._plugin_fingerprint(tiny_config, ("EXT",))
            # This test module is outside the repro package, so the point
            # is fingerprinted — and keyed differently than built-ins.
            assert fingerprint is not None
            assert api._plugin_fingerprint(tiny_config, ("OLIVE",)) is None
        finally:
            algorithm_registry.unregister("EXT")
